// Package kio is the Synthesis kernel's I/O system (Section 5): device
// servers encapsulating the physical devices, streams connecting them
// to threads, and — the heart of the paper — read and write routines
// synthesized by open, specialized to the file, device or pipe they
// serve and installed directly in the opening thread's system-call
// vectors.
//
// Every data-path routine here is Quamachine code emitted through the
// synthesizer with the quaject's invariants (buffer addresses, queue
// geometry, descriptor cells) folded in as constants. The open/close
// bookkeeping that the paper does not time runs in Go behind the
// kernel's KCALL services.
package kio

import (
	"synthesis/internal/fs"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// IO carries the I/O system's state for one booted kernel.
type IO struct {
	K *kernel.Kernel

	// Shared routines.
	badFD uint32 // handler for closed/never-opened descriptors

	// Raw tty server state.
	ttyQ    uint32 // kernel byte queue fed by the tty interrupt
	ttyIntH uint32 // synthesized tty interrupt handler
	adIntH  uint32 // synthesized A/D interrupt handler
	adQ     *ADQueue
	pipes   []*Pipe
	echo    bool

	// Raw disk server state.
	diskIntH      uint32 // synthesized disk completion handler
	diskWait      uint32 // wait cell for the (single) outstanding request
	nextDiskBlock uint32 // host-side block allocation cursor

	// Network server state.
	netIntH      uint32 // synthesized receive interrupt handler (current)
	netRing      uint32 // NIC DMA receive ring base
	netTailCell  uint32 // kernel mirror of the consumed-frame count
	netDropCell  uint32 // frames for ports nobody has open
	netStormCell uint32 // handler entries this watchdog window
	netCoalCell  uint32 // coalescing front-end interrupt counter
	netPortCount uint32 // generic fallback: open-socket count cell
	netPortTab   uint32 // generic fallback: [port, queue] pair table
	netGeneric   bool   // demux strategy: layered table walk, not compare chain
	netCoalesce  uint32 // >0: storm throttle, drain every Nth interrupt
	netWD        *Watchdog
	socks        []*NSocket

	// Metrics quaject state.
	procLast []byte // bytes of the last snapshot cut by a /proc open
}

// TTYIntHandler returns the synthesized tty interrupt handler's code
// address (benchmarks time it with a hand-built exception frame).
func (io *IO) TTYIntHandler() uint32 { return io.ttyIntH }

// ADIntHandler returns the synthesized A/D interrupt handler.
func (io *IO) ADIntHandler() uint32 { return io.adIntH }

// Install wires the I/O system into a freshly booted kernel: device
// files, interrupt handlers, and the open/close/pipe hooks. Must run
// before user threads are created so they inherit the interrupt
// vectors.
func Install(k *kernel.Kernel) *IO {
	io := &IO{K: k, echo: true}

	// Device files.
	mustCreate(k.FS.CreateSpecial("/dev/null", fs.SpecialNull))
	mustCreate(k.FS.CreateSpecial("/dev/tty", fs.SpecialTTY))
	mustCreate(k.FS.CreateSpecial("/dev/ad", fs.SpecialAD))

	io.badFD = k.C.Synthesize(nil, "bad_fd", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(-1), m68k.D(0))
		e.Rte()
	})

	io.installTTY()
	io.installAD()
	io.installDisk()
	io.installNet()
	io.installProc()
	io.wireIOMetrics()

	k.OpenHook = io.open
	k.CloseHook = io.close
	k.PipeHook = io.pipe
	k.SockHook = io.sock
	return io
}

func mustCreate(f *fs.File, err error) *fs.File {
	if err != nil {
		panic(err)
	}
	return f
}

// pokeAllVectors sets a vector in the prototype table and in every
// existing thread.
func (io *IO) pokeAllVectors(vec int, addr uint32) {
	k := io.K
	k.M.Poke(k.ProtoVectors()+uint32(vec)*4, 4, addr)
	for _, t := range k.Threads {
		k.M.Poke(t.TTE+kernel.TTEVec+uint32(vec)*4, 4, addr)
	}
}

// allocFD finds a free descriptor slot on the thread.
func allocFD(t *kernel.Thread) int32 {
	for i := range t.FDs {
		if t.FDs[i].Kind == "" {
			return int32(i)
		}
	}
	return -1
}

// installFD installs synthesized read/write handlers in the thread's
// trap vectors for the descriptor.
func (io *IO) installFD(t *kernel.Thread, fd int32, read, write uint32) {
	m := io.K.M
	if read == 0 {
		read = io.badFD
	}
	if write == 0 {
		write = io.badFD
	}
	m.Poke(t.TTE+kernel.TTEVec+uint32(m68k.VecTrapBase+kernel.TrapRead+int(fd))*4, 4, read)
	m.Poke(t.TTE+kernel.TTEVec+uint32(m68k.VecTrapBase+kernel.TrapWrite+int(fd))*4, 4, write)
}

// open implements the kernel's OpenHook: called from the open system
// call after the VM name lookup succeeded. It allocates a descriptor
// and synthesizes the specialized read and write routines — this is
// the charged code-synthesis part of open's cost (Section 6.3: "60%
// are used to find the file ... and 40% for code synthesis").
func (io *IO) open(k *kernel.Kernel, t *kernel.Thread, name string) (int32, bool) {
	if t == nil {
		return -1, false
	}
	f := k.FS.Lookup(name)
	if f == nil {
		return -1, false
	}
	fd := allocFD(t)
	if fd < 0 {
		return -1, false
	}
	var read, write uint32
	kind := ""
	switch f.Special {
	case fs.SpecialNull:
		read, write = io.synthNull(t, fd)
		kind = "null"
	case fs.SpecialTTY:
		if name == "/dev/rawtty" {
			read, write = io.synthRawTTY(t, fd)
			kind = "rawtty"
		} else {
			read, write = io.synthTTY(t, fd)
			kind = "tty"
		}
	case fs.SpecialAD:
		read, write = io.synthAD(t, fd), 0
		kind = "ad"
	case fs.SpecialDisk:
		read, write = io.synthDiskFile(t, fd, f)
		kind = "diskfile"
	case fs.SpecialMetrics:
		read, write = io.synthProcRead(t, fd, f), 0
		kind = "proc"
	default:
		read, write = io.synthFile(t, fd, f)
		kind = "file"
	}
	t.FDs[fd] = kernel.FDInfo{Kind: kind, File: name}
	// Reset the descriptor's position cell.
	k.M.Poke(kernel.FDCell(t.TTE, int(fd), kernel.FDPos), 4, 0)
	io.installFD(t, fd, read, write)
	io.registerFDMetrics(t, fd)
	return fd, true
}

// close implements CloseHook: point the vectors back at the bad-fd
// stub and release the slot. (The synthesized routines are abandoned
// in code space, as in the original kernel.)
func (io *IO) close(k *kernel.Kernel, t *kernel.Thread, fd int32) bool {
	if t == nil || fd < 0 || int(fd) >= kernel.MaxFD || t.FDs[fd].Kind == "" {
		return false
	}
	switch t.FDs[fd].Kind {
	case "sock":
		io.closeSocket(t, fd)
	case "proc":
		io.closeProc(t, fd)
	}
	io.unregisterFDMetrics(t, fd)
	io.installFD(t, fd, 0, 0)
	t.FDs[fd] = kernel.FDInfo{}
	return true
}

// pipe implements PipeHook for the native pipe call: both ends land
// in the calling thread.
func (io *IO) pipe(k *kernel.Kernel, t *kernel.Thread) (int32, int32, bool) {
	if t == nil {
		return -1, -1, false
	}
	p := io.NewPipe(DefaultPipeBytes)
	rfd := io.OpenPipeEnd(t, p, false)
	wfd := io.OpenPipeEnd(t, p, true)
	if rfd < 0 || wfd < 0 {
		return -1, -1, false
	}
	return rfd, wfd, true
}
