package kio_test

import (
	"testing"

	"synthesis/internal/fault"
	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	synnet "synthesis/internal/net"
	"synthesis/internal/synth"
)

// TestSendGivesUpWhenRingStaysFull: with the receive ring forced full
// on every delivery, the synthesized send must burn its whole retry
// budget, return -1 and count the failure — never spin forever or
// silently claim success.
func TestSendGivesUpWhenRingStaysFull(t *testing.T) {
	k, io := boot(t)
	fault.New(fault.Plan{RingFull: 1}, 1).Attach(k.M)
	const res, wbuf = 0x9000, 0x9300
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitSock(e, 5, 9) // fd 0
		emitSock(e, 9, 5) // fd 1
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(16), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 50_000_000)
	if got := int32(k.M.Peek(res, 4)); got != -1 {
		t.Errorf("send into a permanently full ring = %d, want -1", got)
	}
	s := io.NetSockets()[0]
	if got := k.M.Peek(s.Queue+kio.NQTxFail, 4); got != 1 {
		t.Errorf("NQTxFail = %d, want 1", got)
	}
}

// TestSendRetriesThroughTransientRingFull: with the ring full only
// part of the time, the bounded backoff must eventually land the
// frame and the caller never sees the turbulence.
func TestSendRetriesThroughTransientRingFull(t *testing.T) {
	k, io := boot(t)
	inj := fault.New(fault.Plan{RingFull: 0.5}, 2)
	inj.Attach(k.M)
	const sends = 4
	const res, wbuf = 0x9000, 0x9300
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitSock(e, 5, 9) // fd 0
		emitSock(e, 9, 5) // fd 1
		for i := 0; i < sends; i++ {
			e.MoveL(m68k.Imm(wbuf), m68k.D(1))
			e.MoveL(m68k.Imm(16), m68k.D(2))
			e.Trap(kernel.TrapWrite + 0)
			e.MoveL(m68k.D(0), m68k.Abs(res+uint32(4*i)))
		}
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 50_000_000)
	for i := 0; i < sends; i++ {
		if got := k.M.Peek(res+uint32(4*i), 4); got != 16 {
			t.Fatalf("send %d through transient ring-full = %d, want 16", i, got)
		}
	}
	if inj.Stats.ForcedFull == 0 {
		t.Fatal("injector never forced the ring full; test proves nothing")
	}
	recv := io.NetSockets()[1]
	if got := k.M.Peek(recv.Queue+kio.NQGauge, 4); got != sends {
		t.Errorf("frames deposited = %d, want %d", got, sends)
	}
}

// TestCorruptFrameDroppedAndCounted: a frame corrupted on the wire
// must fail the receive-side checksum, land in the owning socket's
// error counter and never reach the queue.
func TestCorruptFrameDroppedAndCounted(t *testing.T) {
	k, io := boot(t)
	inj := fault.New(fault.Plan{Corrupt: 1}, 1)
	inj.Attach(k.M)
	const wbuf = 0x9300
	k.M.PokeBytes(wbuf, []byte("precious cargo!!"))
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitSock(e, 5, 9) // fd 0
		emitSock(e, 9, 5) // fd 1
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(16), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 50_000_000)
	if inj.Stats.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", inj.Stats.Corrupted)
	}
	recv := io.NetSockets()[1]
	if got := k.M.Peek(recv.Queue+kio.NQErrs, 4); got != 1 {
		t.Errorf("NQErrs = %d, want 1", got)
	}
	if got := k.M.Peek(recv.Queue+kio.NQGauge, 4); got != 0 {
		t.Errorf("corrupt frame was deposited: gauge = %d, want 0", got)
	}
}

// emitSpin synthesizes a program that burns roughly iters loop
// iterations and exits.
func emitSpin(k *kernel.Kernel, iters int32) uint32 {
	return k.C.Synthesize(nil, "spin", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(iters), m68k.D(5))
		e.Label("spin")
		e.SubL(m68k.Imm(1), m68k.D(5))
		e.Bne("spin")
		exitSeq(e)
	})
}

// TestWatchdogStormThrottleEngagesAndReleases: an IRQ storm on the
// NIC level must flip the handler to the coalescing form, and the
// storm's end must flip it back, with both transitions logged.
func TestWatchdogStormThrottleEngagesAndReleases(t *testing.T) {
	k, io := boot(t)
	stormAt := k.M.Cycles + 20_000
	inj := fault.New(fault.Plan{Storms: []fault.Storm{
		{Level: m68k.IRQNet, At: stormAt, Count: 1500, Gap: 100},
	}}, 1)
	inj.Attach(k.M)
	wd := io.InstallWatchdog(kio.WatchdogConfig{StormThreshold: 8})
	th := k.SpawnKernel("spin", emitSpin(k, 80_000))
	run(t, k, th, 100_000_000)

	if inj.Stats.StormUp != 1500 {
		t.Fatalf("storm asserted %d interrupts, want 1500", inj.Stats.StormUp)
	}
	var kinds []string
	for _, ev := range wd.Events {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) < 2 || kinds[0] != "throttle-on" || kinds[len(kinds)-1] != "throttle-off" {
		t.Fatalf("watchdog events = %v, want throttle-on ... throttle-off", kinds)
	}
	if wd.Throttled() {
		t.Error("throttle still engaged after the storm died")
	}
	if io.GenericFallback() {
		t.Error("storm alone must not trigger the generic fallback")
	}
}

// TestWatchdogWedgeFallsBackToGeneric: when the installed receive
// handler runs but stops draining (here: the vector is clobbered with
// an rte-only stub), the watchdog must notice the stalled cursor,
// resynthesize the handler in the generic layered discipline and
// recover the pending frames.
func TestWatchdogWedgeFallsBackToGeneric(t *testing.T) {
	k, io := boot(t)
	th := k.SpawnKernel("spin", emitSpin(k, 80_000))
	if io.OpenSocket(th, 9, 5) != 0 {
		t.Fatal("socket fd")
	}
	wd := io.InstallWatchdog(kio.WatchdogConfig{WedgeWindows: 2})

	// Wedge: clobber the net vector with a handler that acknowledges
	// nothing, in the prototype table and the existing thread.
	stub := k.C.Synthesize(nil, "wedged", nil, func(e *synth.Emitter) { e.Rte() })
	vec := uint32(m68k.VecAutovector+m68k.IRQNet) * 4
	k.M.Poke(k.ProtoVectors()+vec, 4, stub)
	k.M.Poke(th.TTE+kernel.TTEVec+vec, 4, stub)

	// Three valid frames for the open port arrive from outside.
	payload := []byte("hello from the far side of the wire")
	frame := make([]byte, synnet.HeaderBytes+len(payload))
	put4 := func(off int, v uint32) {
		frame[off] = byte(v >> 24)
		frame[off+1] = byte(v >> 16)
		frame[off+2] = byte(v >> 8)
		frame[off+3] = byte(v)
	}
	put4(0, 9) // dst port
	put4(4, 5) // src port
	put4(8, synnet.Checksum(payload))
	copy(frame[synnet.HeaderBytes:], payload)
	for i := 0; i < 3; i++ {
		if !k.Net.InjectFrame(frame) {
			t.Fatal("inject failed")
		}
	}

	run(t, k, th, 100_000_000)

	if !io.GenericFallback() {
		t.Fatal("watchdog never fell back to the generic handler")
	}
	found := false
	for _, ev := range wd.Events {
		if ev.Kind == "generic-fallback" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no generic-fallback event: %v", wd.Events)
	}
	// The generic handler must have drained the wedged frames.
	s := io.NetSockets()[0]
	if got := k.M.Peek(s.Queue+kio.NQGauge, 4); got != 3 {
		t.Errorf("frames recovered = %d, want 3", got)
	}
	if pending := k.Net.RxPending(); pending != 0 {
		t.Errorf("RxPending = %d after recovery, want 0", pending)
	}
}
