package kio_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
	"synthesis/internal/synth"
	"synthesis/internal/unixemu"
)

// The guest-visible metrics quaject, round-tripped: a guest program
// opens /proc/metrics through the UNIX emulator, reads the whole
// snapshot, and the bytes it received must be exactly what the
// kernel's renderer produced — the same renderer quamon's
// -metrics-json export uses, so guest and host observe the kernel
// through one code path.

func bootProcMetrics(t *testing.T) (*kernel.Kernel, *kio.IO, *metrics.Registry) {
	t.Helper()
	reg := metrics.New()
	k := kernel.Boot(kernel.Config{
		Machine: m68k.Config{MemSize: 1 << 20, TraceDepth: 256},
		Metrics: reg,
	})
	io := kio.Install(k)
	unixemu.Install(k)
	return k, io, reg
}

// emitUnix emits one UNIX-convention syscall: number in D0, trap #0.
func emitUnix(e *synth.Emitter, no int32) {
	e.MoveL(m68k.Imm(no), m68k.D(0))
	e.Trap(kernel.TrapUnix)
}

func TestProcMetricsRoundTrip(t *testing.T) {
	k, io, reg := bootProcMetrics(t)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x40000
	const readMax = 0x8000
	pokeName(k, nameAddr, kio.ProcMetricsPath)

	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		// First open/read/close: warms the plane (allocates the proc
		// read's invocation cell, registers the fd gauge).
		e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
		emitUnix(e, unixemu.SysOpen)
		e.MoveL(m68k.D(0), m68k.D(6))
		e.MoveL(m68k.D(6), m68k.D(1))
		e.MoveL(m68k.Imm(buf), m68k.D(2))
		e.MoveL(m68k.Imm(readMax), m68k.D(3))
		emitUnix(e, unixemu.SysRead)
		e.MoveL(m68k.D(6), m68k.D(1))
		emitUnix(e, unixemu.SysClose)

		// Second open: a fresh snapshot is cut and the read routine
		// resynthesized around it; this is the one we verify.
		e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
		emitUnix(e, unixemu.SysOpen)
		e.MoveL(m68k.D(0), m68k.D(6))
		e.MoveL(m68k.D(0), m68k.Abs(res)) // fd
		e.MoveL(m68k.D(6), m68k.D(1))
		e.MoveL(m68k.Imm(buf), m68k.D(2))
		e.MoveL(m68k.Imm(readMax), m68k.D(3))
		emitUnix(e, unixemu.SysRead)
		e.MoveL(m68k.D(0), m68k.Abs(res+4)) // snapshot length
		// A second read must report end of snapshot.
		e.MoveL(m68k.D(6), m68k.D(1))
		e.MoveL(m68k.Imm(buf+readMax), m68k.D(2))
		e.MoveL(m68k.Imm(readMax), m68k.D(3))
		emitUnix(e, unixemu.SysRead)
		e.MoveL(m68k.D(0), m68k.Abs(res+8)) // EOF read -> 0
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 50_000_000)

	if fd := int32(k.M.Peek(res, 4)); fd < 0 {
		t.Fatalf("second open of %s = %d, want >= 0", kio.ProcMetricsPath, fd)
	}
	want := io.ProcLast()
	if len(want) == 0 {
		t.Fatal("ProcLast is empty: no snapshot was cut")
	}
	n := int32(k.M.Peek(res+4, 4))
	if int(n) != len(want) {
		t.Fatalf("guest read %d bytes, host rendered %d", n, len(want))
	}
	if eof := int32(k.M.Peek(res+8, 4)); eof != 0 {
		t.Errorf("read past snapshot end = %d, want 0", eof)
	}
	got := make([]byte, n)
	for i := range got {
		got[i] = byte(k.M.Peek(buf+uint32(i), 1))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("guest bytes differ from host renderer output:\nguest: %.120s\nhost:  %.120s", got, want)
	}

	// The payload must decode as a metrics snapshot and carry the
	// plane's counters, including the quaject's own invocation count
	// (cut at open #2, after open #1's read ran once) and the unixemu
	// gate's syscall cells.
	var snap metrics.Snapshot
	if err := json.Unmarshal(got, &snap); err != nil {
		t.Fatalf("guest snapshot does not decode: %v", err)
	}
	if c := snap.Counters["synth.kio.proc.read.calls"]; c != 1 {
		t.Errorf("snapshot proc read calls = %d, want 1 (open #1's read)", c)
	}
	if c := snap.Counters["unixemu.sys.open.calls"]; c != 2 {
		t.Errorf("snapshot unixemu open calls = %d, want 2", c)
	}

	// Modulo-clock identity with the host export: a host snapshot taken
	// now sees the same key sets, and every monotonic counter at a
	// value >= the guest's earlier view.
	host := reg.Snapshot()
	for name, gv := range snap.Counters {
		hv, ok := host.Counters[name]
		if !ok {
			t.Errorf("guest counter %q missing from host snapshot", name)
			continue
		}
		if hv < gv {
			t.Errorf("counter %q went backwards: guest %d, host %d", name, gv, hv)
		}
	}
	for name := range snap.Gauges {
		if _, ok := host.Gauges[name]; !ok {
			t.Errorf("guest gauge %q missing from host snapshot", name)
		}
	}
}

// TestProcGenericTwinSameBytes installs the generic layered read next
// to the synthesized one (same template, cell bindings, jsr'd bcopy)
// and checks both return the identical snapshot bytes — the two
// instantiations differ only in path length.
func TestProcGenericTwinSameBytes(t *testing.T) {
	k, io, _ := bootProcMetrics(t)
	const nameAddr, res, bufA, bufB = 0x9100, 0x9000, 0x40000, 0x50000
	const readMax = 0x8000
	const svcTwin = 122
	pokeName(k, nameAddr, kio.ProcMetricsPath)

	var mainTh *kernel.Thread
	k.M.RegisterService(svcTwin, func(mm *m68k.Machine) uint64 {
		mm.D[7] = uint32(io.SynthGenericProcRead(mainTh, int32(mm.D[6])))
		return 0
	})

	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
		emitUnix(e, unixemu.SysOpen)
		e.MoveL(m68k.D(0), m68k.D(6))
		e.Kcall(svcTwin) // generic twin descriptor -> D7
		e.MoveL(m68k.D(7), m68k.Abs(res))
		e.MoveL(m68k.D(6), m68k.D(1))
		e.MoveL(m68k.Imm(bufA), m68k.D(2))
		e.MoveL(m68k.Imm(readMax), m68k.D(3))
		emitUnix(e, unixemu.SysRead)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		e.MoveL(m68k.D(7), m68k.D(1))
		e.MoveL(m68k.Imm(bufB), m68k.D(2))
		e.MoveL(m68k.Imm(readMax), m68k.D(3))
		emitUnix(e, unixemu.SysRead)
		e.MoveL(m68k.D(0), m68k.Abs(res+8))
		exitSeq(e)
	})
	mainTh = k.SpawnKernel("main", prog)
	run(t, k, mainTh, 50_000_000)

	if fd := int32(k.M.Peek(res, 4)); fd < 0 {
		t.Fatalf("generic twin install failed: fd = %d", fd)
	}
	nA := k.M.Peek(res+4, 4)
	nB := k.M.Peek(res+8, 4)
	if nA == 0 || nA != nB {
		t.Fatalf("read lengths differ: synthesized %d, generic %d", nA, nB)
	}
	for i := uint32(0); i < nA; i++ {
		a, b := k.M.Peek(bufA+i, 1), k.M.Peek(bufB+i, 1)
		if a != b {
			t.Fatalf("byte %d differs: synthesized %#x, generic %#x", i, a, b)
		}
	}
}

// TestProcWithoutMetricsPlane: a kernel booted with no registry still
// serves /proc/metrics (the zero snapshot), so guests never see the
// file vanish based on host configuration.
func TestProcWithoutMetricsPlane(t *testing.T) {
	k, _ := boot(t)
	unixemu.Install(k)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x40000
	pokeName(k, nameAddr, kio.ProcMetricsPath)
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
		emitUnix(e, unixemu.SysOpen)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		e.MoveL(m68k.D(0), m68k.D(1))
		e.MoveL(m68k.Imm(buf), m68k.D(2))
		e.MoveL(m68k.Imm(4096), m68k.D(3))
		emitUnix(e, unixemu.SysRead)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 50_000_000)

	if fd := int32(k.M.Peek(res, 4)); fd < 0 {
		t.Fatalf("open without plane = %d, want >= 0", fd)
	}
	n := int32(k.M.Peek(res+4, 4))
	if n <= 0 {
		t.Fatalf("read without plane = %d, want > 0", n)
	}
	got := make([]byte, n)
	for i := range got {
		got[i] = byte(k.M.Peek(buf+uint32(i), 1))
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(got, &snap); err != nil {
		t.Fatalf("zero snapshot does not decode: %v", err)
	}
}

// TestProcPromVariant: the .prom twin serves the Prometheus text
// exposition with the synthesis_ prefix.
func TestProcPromVariant(t *testing.T) {
	k, io, _ := bootProcMetrics(t)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x40000
	pokeName(k, nameAddr, kio.ProcMetricsPromPath)
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
		emitUnix(e, unixemu.SysOpen)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		e.MoveL(m68k.D(0), m68k.D(1))
		e.MoveL(m68k.Imm(buf), m68k.D(2))
		e.MoveL(m68k.Imm(0x8000), m68k.D(3))
		emitUnix(e, unixemu.SysRead)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 50_000_000)

	n := int32(k.M.Peek(res+4, 4))
	if n <= 0 {
		t.Fatalf("prom read = %d, want > 0", n)
	}
	got := make([]byte, n)
	for i := range got {
		got[i] = byte(k.M.Peek(buf+uint32(i), 1))
	}
	if !bytes.Equal(got, io.ProcLast()) {
		t.Fatal("prom guest bytes differ from host renderer output")
	}
	if !bytes.Contains(got, []byte("synthesis_")) {
		t.Errorf("prom exposition lacks the synthesis_ prefix:\n%.200s", got)
	}
}

// TestProcCloseFreesSnapshotBuffer: open/close cycles must not leak
// the per-open snapshot buffer (the code is abandoned, the data is
// not).
func TestProcCloseFreesSnapshotBuffer(t *testing.T) {
	k, io, _ := bootProcMetrics(t)
	const nameAddr = 0x9100
	pokeName(k, nameAddr, kio.ProcMetricsPath)

	const cycles = 20
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(cycles), m68k.D(5))
		e.Label("loop")
		e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
		emitUnix(e, unixemu.SysOpen)
		e.MoveL(m68k.D(0), m68k.D(1))
		emitUnix(e, unixemu.SysClose)
		e.SubL(m68k.Imm(1), m68k.D(5))
		e.Bne("loop")
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)

	// Measure heap after a couple of warm-up rounds have stabilized
	// the plane's own allocations (invocation cell etc.), then check
	// the loop does not consume heap per round. The heap free-byte
	// count after the run must match a single open/close's footprint:
	// every snapshot buffer freed.
	run(t, k, th, 200_000_000)
	freeAfter := k.Heap.FreeBytes()

	prog2 := k.C.Synthesize(nil, "main2", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(cycles), m68k.D(5))
		e.Label("loop")
		e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
		emitUnix(e, unixemu.SysOpen)
		e.MoveL(m68k.D(0), m68k.D(1))
		emitUnix(e, unixemu.SysClose)
		e.SubL(m68k.Imm(1), m68k.D(5))
		e.Bne("loop")
		exitSeq(e)
	})
	th2 := k.SpawnKernel("main2", prog2)
	run(t, k, th2, 200_000_000)
	freeAfter2 := k.Heap.FreeBytes()

	// Snapshot lengths drift a few bytes per cut (counters gain
	// digits), so exact-fit reuse is not guaranteed and a little
	// fragmentation is expected. Leaking would cost a full buffer per
	// open; allow a quarter of that.
	snapLen := len(io.ProcLast())
	if snapLen == 0 {
		t.Fatal("no snapshot cut")
	}
	if budget := cycles * snapLen / 4; int(freeAfter)-int(freeAfter2) > budget {
		t.Errorf("heap shrank %d bytes over %d open/close cycles of ~%d-byte snapshots (leak budget %d)",
			int(freeAfter)-int(freeAfter2), cycles, snapLen, budget)
	}
}
