package kio_test

import (
	"strings"
	"testing"

	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
	"synthesis/internal/synth"
)

// bootMetrics is boot with the observability plane wired from the
// start, so the counter plane stitches invocation counters into the
// synthesized socket routines.
func bootMetrics(t *testing.T) (*kernel.Kernel, *kio.IO, *metrics.Registry) {
	t.Helper()
	reg := metrics.New()
	k := kernel.Boot(kernel.Config{
		Machine: m68k.Config{MemSize: 1 << 20, TraceDepth: 256},
		Metrics: reg,
	})
	io := kio.Install(k)
	return k, io, reg
}

// TestSocketMetricsServeQueueCells proves the acceptance criterion for
// the kio counters: the registry's kio.sock.<port>.* sampled metrics
// read the very queue cells the synthesized code maintains, and the
// counter plane's synth.<region>.calls metrics count routine entries.
func TestSocketMetricsServeQueueCells(t *testing.T) {
	k, io, reg := bootMetrics(t)
	const wbuf, rbuf = 0x9300, 0x9700
	k.M.PokeBytes(wbuf, []byte("ping!"))
	const rounds = 4
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitSock(e, 5, 9) // fd 0
		emitSock(e, 9, 5) // fd 1
		e.MoveL(m68k.Imm(rounds), m68k.D(7))
		e.Label("loop")
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(5), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.MoveL(m68k.Imm(rbuf), m68k.D(1))
		e.MoveL(m68k.Imm(64), m68k.D(2))
		e.Trap(kernel.TrapRead + 1)
		e.SubL(m68k.Imm(1), m68k.D(7))
		e.Bne("loop")
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 20_000_000)

	snap := reg.Snapshot()
	if snap.Cycles == 0 || snap.ClockMHz == 0 {
		t.Fatalf("snapshot has no time base: %+v cycles=%d", snap.ClockMHz, snap.Cycles)
	}

	// The registry must serve the same values as the raw queue cells.
	var sock9 *kio.NSocket
	for _, s := range io.NetSockets() {
		if s.Local == 9 {
			sock9 = s
		}
	}
	if sock9 == nil {
		t.Fatal("socket 9 not open")
	}
	cell := uint64(k.M.Peek(sock9.Queue+kio.NQGauge, 4))
	if cell != rounds {
		t.Fatalf("queue gauge cell = %d, want %d", cell, rounds)
	}
	if got := snap.Counters["kio.sock.9.rx_frames"]; got != cell {
		t.Errorf("kio.sock.9.rx_frames = %d, cell = %d", got, cell)
	}
	for _, name := range []string{"kio.sock.9.tx_fail", "kio.sock.9.rx_errs", "kio.sock.9.rx_drops"} {
		if got, ok := snap.Counters[name]; !ok {
			t.Errorf("%s not registered", name)
		} else if got != 0 {
			t.Errorf("%s = %d, want 0 on a clean run", name, got)
		}
	}
	if depth, ok := snap.Gauges["kio.sock.9.queue_depth"]; !ok {
		t.Error("kio.sock.9.queue_depth not registered")
	} else if depth != 0 {
		t.Errorf("queue depth = %g after a drained run", depth)
	}

	// Stitched invocation counters: send and recv ran `rounds` times,
	// the receive interrupt at least that often.
	if got := snap.Counters["synth.kio.sock5.send.calls"]; got != rounds {
		t.Errorf("synth.kio.sock5.send.calls = %d, want %d", got, rounds)
	}
	if got := snap.Counters["synth.kio.sock9.recv.calls"]; got != rounds {
		t.Errorf("synth.kio.sock9.recv.calls = %d, want %d", got, rounds)
	}
	if got := snap.Counters["synth.kio.net_intr.calls"]; got < rounds {
		t.Errorf("synth.kio.net_intr.calls = %d, want >= %d", got, rounds)
	}
	// The handler was resynthesized at install and on each of the two
	// opens; the counter survives resynthesis because the plane keeps
	// one cell per region name.
	if got := snap.Counters["synth.kio.net_intr.resynth"]; got != 3 {
		t.Errorf("synth.kio.net_intr.resynth = %d, want 3", got)
	}
	if got := snap.Counters["kernel.spurious_irq"]; got != 0 {
		t.Errorf("kernel.spurious_irq = %d", got)
	}
}

// TestSocketCloseUnregistersMetrics proves the per-socket family is
// torn down with the socket, so later snapshots never read a freed
// queue.
func TestSocketCloseUnregistersMetrics(t *testing.T) {
	k, _, reg := bootMetrics(t)
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitSock(e, 5, 9) // fd 0
		e.MoveL(m68k.Imm(kernel.SysClose), m68k.D(0))
		e.MoveL(m68k.Imm(0), m68k.D(1))
		e.Trap(kernel.TrapSys)
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 20_000_000)
	for _, n := range reg.Names() {
		if strings.HasPrefix(n, "kio.sock.5.") {
			t.Errorf("metric %s survived socket close", n)
		}
	}
}

// TestDisabledPlaneGeneratesIdenticalCode is the zero-cost guarantee
// at the machine-code level: without a registry the Counted() option
// is inert and the synthesized socket routines are byte-for-byte the
// code a benchmark measures.
func TestDisabledPlaneGeneratesIdenticalCode(t *testing.T) {
	build := func(reg *metrics.Registry) (*kernel.Kernel, uint32) {
		k := kernel.Boot(kernel.Config{
			Machine: m68k.Config{MemSize: 1 << 20, TraceDepth: 256},
			Metrics: reg,
		})
		kio.Install(k)
		prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
			emitSock(e, 5, 9)
			exitSeq(e)
		})
		th := k.SpawnKernel("main", prog)
		k.Start(th)
		if err := k.Run(20_000_000); err != nil {
			t.Fatalf("run: %v", err)
		}
		var send uint32
		for _, th := range k.Threads {
			if a, ok := th.Q.Entries["sock_send"]; ok {
				send = a
			}
		}
		if send == 0 {
			t.Fatal("no sock_send entry synthesized")
		}
		return k, send
	}
	kOff, sendOff := build(nil)
	kOn, sendOn := build(metrics.New())
	offCode := m68k.Disassemble(kOff.M.Code, sendOff, 6)
	onCode := m68k.Disassemble(kOn.M.Code, sendOn, 6)
	if offCode == onCode {
		t.Fatal("instrumented build emitted identical code — counter not stitched?")
	}
	if !strings.Contains(onCode, "add.l #1") {
		t.Errorf("instrumented sock_send does not start with the counter bump:\n%s", onCode)
	}
	// The disabled build must not contain any counter bump at entry.
	if strings.Contains(strings.SplitN(offCode, "\n", 2)[0], "add.l #1") {
		t.Errorf("disabled sock_send carries a counter bump:\n%s", offCode)
	}
}
