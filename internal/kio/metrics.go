package kio

import (
	"fmt"

	"synthesis/internal/metrics"
)

// kio's half of the observability plane. Every counter in this
// package is maintained by synthesized machine code in VM memory (the
// queue cells NQGauge/NQDrops/NQErrs/NQTxFail, the handler's stack
// drop cell), so the metrics plane never adds an instruction to a hot
// path: the registry holds closures that read the cells only at
// snapshot time. Only the watchdog, whose policy already runs as host
// code behind a KCALL, bumps atomic handles directly.
//
// Naming scheme (documented in README): kio.sock.<port>.<what> for
// per-socket metrics, kio.net.<what> for the shared receive path.
// Per-socket names are unregistered when the socket closes, so a
// snapshot never mixes cells from a freed queue.

// reg returns the registry wired at Boot, or nil (all registration
// below no-ops on a nil registry).
func (io *IO) reg() *metrics.Registry { return io.K.Metrics }

func sockPrefix(local uint32) string {
	return fmt.Sprintf("kio.sock.%d.", local)
}

// registerSockMetrics serves the socket's queue cells through the
// registry. The closures capture the queue base; they are dropped by
// unregisterSockMetrics before the queue is abandoned.
func (io *IO) registerSockMetrics(s *NSocket) {
	reg := io.reg()
	if reg == nil {
		return
	}
	m := io.K.M
	q := s.Queue
	p := sockPrefix(s.Local)
	reg.Sample(p+"rx_frames", func() uint64 { return uint64(m.Peek(q+NQGauge, 4)) })
	reg.Sample(p+"rx_drops", func() uint64 { return uint64(m.Peek(q+NQDrops, 4)) })
	reg.Sample(p+"rx_errs", func() uint64 { return uint64(m.Peek(q+NQErrs, 4)) })
	reg.Sample(p+"tx_fail", func() uint64 { return uint64(m.Peek(q+NQTxFail, 4)) })
	reg.SampleGauge(p+"queue_depth", func() float64 {
		return float64(m.Peek(q+NQHead, 4) - m.Peek(q+NQTail, 4))
	})
}

// unregisterSockMetrics drops the socket's sampled metrics when it
// closes.
func (io *IO) unregisterSockMetrics(s *NSocket) {
	if reg := io.reg(); reg != nil {
		reg.UnregisterPrefix(sockPrefix(s.Local))
	}
}

// registerNetMetrics serves the shared receive-path cells; called once
// from installNet.
func (io *IO) registerNetMetrics() {
	reg := io.reg()
	if reg == nil {
		return
	}
	m := io.K.M
	drop := io.netDropCell
	reg.Sample("kio.net.stack_drops", func() uint64 { return uint64(m.Peek(drop, 4)) })
}

// wireWatchdogMetrics attaches the watchdog's host-side counters and
// mode gauges. Nil-registry handles make every bump a no-op.
func (w *Watchdog) wireWatchdogMetrics() {
	reg := w.io.reg()
	w.mEvents = reg.Counter("kio.net.recovery_events")
	w.mThrottled = reg.Gauge("kio.net.throttled")
	w.mGeneric = reg.Gauge("kio.net.generic_fallback")
}
