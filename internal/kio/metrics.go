package kio

import (
	"fmt"

	"synthesis/internal/kernel"
	"synthesis/internal/metrics"
)

// kio's half of the observability plane. Every counter in this
// package is maintained by synthesized machine code in VM memory (the
// queue cells NQGauge/NQDrops/NQErrs/NQTxFail, the handler's stack
// drop cell), so the metrics plane never adds an instruction to a hot
// path: the registry holds closures that read the cells only at
// snapshot time. Only the watchdog, whose policy already runs as host
// code behind a KCALL, bumps atomic handles directly.
//
// Naming scheme (documented in README): kio.sock.<port>.<what> for
// per-socket metrics, kio.net.<what> for the shared receive path.
// Per-socket names are unregistered when the socket closes, so a
// snapshot never mixes cells from a freed queue.

// reg returns the registry wired at Boot, or nil (all registration
// below no-ops on a nil registry).
func (io *IO) reg() *metrics.Registry { return io.K.Metrics }

func sockPrefix(local uint32) string {
	return fmt.Sprintf("kio.sock.%d.", local)
}

// registerSockMetrics serves the socket's queue cells through the
// registry. The closures capture the queue base; they are dropped by
// unregisterSockMetrics before the queue is abandoned.
func (io *IO) registerSockMetrics(s *NSocket) {
	reg := io.reg()
	if reg == nil {
		return
	}
	m := io.K.M
	q := s.Queue
	p := sockPrefix(s.Local)
	reg.Sample(p+"rx_frames", func() uint64 { return uint64(m.Peek(q+NQGauge, 4)) })
	reg.Sample(p+"rx_drops", func() uint64 { return uint64(m.Peek(q+NQDrops, 4)) })
	reg.Sample(p+"rx_errs", func() uint64 { return uint64(m.Peek(q+NQErrs, 4)) })
	reg.Sample(p+"tx_fail", func() uint64 { return uint64(m.Peek(q+NQTxFail, 4)) })
	reg.SampleGauge(p+"queue_depth", func() float64 {
		return float64(m.Peek(q+NQHead, 4) - m.Peek(q+NQTail, 4))
	})
}

// unregisterSockMetrics drops the socket's sampled metrics when it
// closes.
func (io *IO) unregisterSockMetrics(s *NSocket) {
	if reg := io.reg(); reg != nil {
		reg.UnregisterPrefix(sockPrefix(s.Local))
	}
}

// registerNetMetrics serves the shared receive-path cells; called once
// from installNet.
func (io *IO) registerNetMetrics() {
	reg := io.reg()
	if reg == nil {
		return
	}
	m := io.K.M
	drop := io.netDropCell
	reg.Sample("kio.net.stack_drops", func() uint64 { return uint64(m.Peek(drop, 4)) })
}

// wireWatchdogMetrics attaches the watchdog's host-side counters and
// mode gauges. Nil-registry handles make every bump a no-op.
func (w *Watchdog) wireWatchdogMetrics() {
	reg := w.io.reg()
	w.mEvents = reg.Counter("kio.net.recovery_events")
	w.mThrottled = reg.Gauge("kio.net.throttled")
	w.mGeneric = reg.Gauge("kio.net.generic_fallback")
}

// wireIOMetrics registers the remaining device subsystems' cells as
// sampled metrics (previously they were visible only as raw VM cells):
// the tty input queue, the disk server, and the host-side block
// cursor. Called once from Install, after the device servers exist.
func (io *IO) wireIOMetrics() {
	reg := io.reg()
	if reg == nil {
		return
	}
	m := io.K.M
	ttyQ := io.ttyQ
	reg.Sample("kio.tty.rx_chars", func() uint64 {
		return uint64(m.Peek(ttyQ+KQGauge, 4))
	})
	reg.SampleGauge("kio.tty.queue_depth", func() float64 {
		d := int32(m.Peek(ttyQ+KQHead, 4)) - int32(m.Peek(ttyQ+KQTail, 4))
		if d < 0 {
			d += ttyQueueBytes
		}
		return float64(d)
	})
	reg.Sample("kio.disk.blocks_resident", func() uint64 {
		return uint64(io.nextDiskBlock)
	})
	reg.SampleGauge("kio.disk.reader_parked", func() float64 {
		if m.Peek(io.diskWait, 4) != 0 {
			return 1
		}
		return 0
	})
}

// registerPipeMetrics serves one pipe's queue cells; idx is the pipe's
// index in creation order. Pipes are never torn down (their queues are
// abandoned like synthesized code), so there is no unregister side.
func (io *IO) registerPipeMetrics(p *Pipe, idx int) {
	reg := io.reg()
	if reg == nil {
		return
	}
	m := io.K.M
	q := p.Q
	pre := fmt.Sprintf("kio.pipe.%d.", idx)
	reg.SampleGauge(pre+"depth", func() float64 { return float64(q.Len(m)) })
	reg.Sample(pre+"bytes", func() uint64 { return uint64(m.Peek(q.Addr+KQGauge, 4)) })
}

// fdPrefix names one descriptor's metrics: kio.fd.<thread>.<n>.*.
func fdPrefix(t *kernel.Thread, fd int32) string {
	return fmt.Sprintf("kio.fd.%s.%d.", t.Name, fd)
}

// registerFDMetrics serves the descriptor's byte gauge (the cell every
// synthesized read/write bumps for the fine-grain scheduler) as a
// sampled metric, tagged with what the descriptor is open on.
func (io *IO) registerFDMetrics(t *kernel.Thread, fd int32) {
	reg := io.reg()
	if reg == nil {
		return
	}
	m := io.K.M
	cell := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
	reg.Sample(fdPrefix(t, fd)+"bytes", func() uint64 {
		return uint64(m.Peek(cell, 4))
	})
}

// unregisterFDMetrics drops a descriptor's sampled metrics on close,
// so a reused slot never serves a stale cell.
func (io *IO) unregisterFDMetrics(t *kernel.Thread, fd int32) {
	if reg := io.reg(); reg != nil {
		reg.UnregisterPrefix(fdPrefix(t, fd))
	}
}
