package kio

import (
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// Kernel byte queues: the SP-SC queue of Figure 1 laid out in machine
// memory, moved by synthesized code. Each stream's queue geometry is
// a synthesis-time constant, so the emitted put/get code addresses
// the buffer with folded immediates — no queue descriptor is ever
// dereferenced at run time (Factoring Invariants).
//
// Blocking follows the paper's synchronous-queue semantics: the only
// synchronization in the data path is the ordering of the final index
// store (Code Isolation between the producer's head and the
// consumer's tail); the empty/full edge raises the interrupt level
// across the re-check-and-park sequence so a producer running from an
// interrupt handler cannot slip a wakeup in between (the uniprocessor
// equivalent of the paper's brief masked sections).
//
// Layout of a kernel queue in memory (all offsets in bytes):
const (
	KQHead  = 0  // next byte the producer fills
	KQTail  = 4  // next byte the consumer drains
	KQRWait = 8  // reader wait cell (thread blocked for data)
	KQWWait = 12 // writer wait cell (thread blocked for space)
	KQGauge = 16 // I/O gauge for the fine-grain scheduler
	KQBuf   = 20 // the byte buffer
)

// KQueue describes one kernel queue (host-side mirror).
type KQueue struct {
	Addr uint32 // base address in machine memory
	Size int32  // buffer bytes (capacity is Size-1)
}

// NewKQueue allocates a kernel queue.
func (io *IO) NewKQueue(size int32) *KQueue {
	k := io.K
	addr, err := k.Heap.Alloc(uint32(KQBuf + size))
	if err != nil {
		panic("kio: cannot allocate kernel queue")
	}
	for off := uint32(0); off < KQBuf; off += 4 {
		k.M.Poke(addr+off, 4, 0)
	}
	return &KQueue{Addr: addr, Size: size}
}

// Len returns the current queue depth (host view, for tests).
func (q *KQueue) Len(m *m68k.Machine) int32 {
	h := int32(m.Peek(q.Addr+KQHead, 4))
	t := int32(m.Peek(q.Addr+KQTail, 4))
	d := h - t
	if d < 0 {
		d += q.Size
	}
	return d
}

// Gauge returns the queue's I/O gauge (host view).
func (q *KQueue) Gauge(m *m68k.Machine) uint32 {
	return m.Peek(q.Addr+KQGauge, 4)
}

const iplMaskBits = 0x0700

// emitCopy emits an inline byte copier: D1 bytes from (A0)+ to (A1)+,
// long words first, byte tail after. Clobbers D0 and D1. This is the
// unrolled-into-the-caller block transfer of Section 6.2 ("the
// generated code loads long words from one quaspace into registers
// and stores them back in the other quaspace").
func emitCopy(e *synth.Emitter) {
	// 32-byte groups with the move unrolled eight times ("with
	// unrolled loops this achieves the data transfer rate of about
	// 8MB per second"), then leftover long words, then bytes.
	e.MoveL(m68k.D(1), m68k.D(0))
	e.LsrL(m68k.Imm(5), m68k.D(0))
	e.Beq("kcp_longs")
	e.SubL(m68k.Imm(1), m68k.D(0))
	e.Label("kcp_32")
	for i := 0; i < 8; i++ {
		e.MoveL(m68k.PostInc(0), m68k.PostInc(1))
	}
	e.Dbra(0, "kcp_32")
	e.Label("kcp_longs")
	e.MoveL(m68k.D(1), m68k.D(0))
	e.LsrL(m68k.Imm(2), m68k.D(0))
	e.AndL(m68k.Imm(7), m68k.D(0))
	e.Beq("kcp_tail")
	e.SubL(m68k.Imm(1), m68k.D(0))
	e.Label("kcp_4")
	e.MoveL(m68k.PostInc(0), m68k.PostInc(1))
	e.Dbra(0, "kcp_4")
	e.Label("kcp_tail")
	e.AndL(m68k.Imm(3), m68k.D(1))
	e.Beq("kcp_done")
	e.SubL(m68k.Imm(1), m68k.D(1))
	e.Label("kcp_b")
	e.MoveB(m68k.PostInc(0), m68k.PostInc(1))
	e.Dbra(1, "kcp_b")
	e.Label("kcp_done")
}

// emitQueueWrite emits the body of a blocking bulk write into the
// queue: D1 = source buffer, D2 = length; returns D0 = bytes written
// (the full length) and ends with RTE. Clobbers D0-D2, A0, A1 (the
// system-call scratch set). Must be emitted into a trap or interrupt
// handler (it manipulates the interrupt mask).
func (io *IO) emitQueueWrite(e *synth.Emitter, q *KQueue, fdGauge uint32) {
	head := q.Addr + KQHead
	tail := q.Addr + KQTail
	buf := q.Addr + KQBuf
	rwait := q.Addr + KQRWait
	wwait := q.Addr + KQWWait
	gauge := q.Addr + KQGauge
	size := q.Size

	// Single-byte fast path: the overwhelmingly common case for
	// character streams, and the Figure 1 put in its shortest form —
	// the specialization behind the paper's one-byte pipe numbers.
	e.CmpL(m68k.Imm(1), m68k.D(2))
	e.Bne("qw_general")
	e.MoveL(m68k.Abs(head), m68k.D(0))
	e.MoveL(m68k.D(0), m68k.D(2))
	e.AddL(m68k.Imm(1), m68k.D(2))
	e.CmpL(m68k.Imm(size), m68k.D(2))
	e.Bne("qw_fw")
	e.Clr(4, m68k.D(2))
	e.Label("qw_fw")
	e.Cmp(4, m68k.Abs(tail), m68k.D(2))
	e.Beq("qw_slow1") // full: fall into the blocking path
	e.MoveL(m68k.D(1), m68k.A(0))
	e.Lea(m68k.Abs(buf), 1)
	e.MoveB(m68k.Ind(0), m68k.Idx(0, 1, 0, 1)) // buf[head] = *src
	e.MoveL(m68k.D(2), m68k.Abs(head))         // publish
	e.AddL(m68k.Imm(1), m68k.Abs(gauge))
	if fdGauge != 0 {
		e.AddL(m68k.Imm(1), m68k.Abs(fdGauge))
	}
	e.Lea(m68k.Abs(rwait), 0)
	e.Jsr(io.K.WakeCellRoutine())
	e.MoveL(m68k.Imm(1), m68k.D(0))
	e.Rte()
	e.Label("qw_slow1")
	e.MoveL(m68k.Imm(1), m68k.D(2)) // restore the length

	e.Label("qw_general")
	e.TstL(m68k.D(2))
	e.Beq("qw_zero")
	e.MoveL(m68k.D(2), m68k.PreDec(7)) // original length
	e.MoveL(m68k.D(1), m68k.A(0))      // source cursor

	e.Label("qw_outer")
	e.OrSR(iplMaskBits) // space check and park are atomic vs producers/consumers
	e.TstL(m68k.D(2))
	e.Beq("qw_done")
	e.MoveL(m68k.Abs(head), m68k.D(0))
	e.MoveL(m68k.Abs(tail), m68k.D(1))
	// Contiguous space from head: tail > head ? tail-head-1
	//                                          : size-head (-1 if tail==0)
	e.Cmp(4, m68k.D(0), m68k.D(1)) // flags = tail - head
	e.Bhi("qw_caseA")
	e.TstL(m68k.D(1))
	e.Bne("qw_b1")
	e.MoveL(m68k.Imm(size-1), m68k.D(1))
	e.SubL(m68k.D(0), m68k.D(1))
	e.Bra("qw_have")
	e.Label("qw_b1")
	e.MoveL(m68k.Imm(size), m68k.D(1))
	e.SubL(m68k.D(0), m68k.D(1))
	e.Bra("qw_have")
	e.Label("qw_caseA")
	e.SubL(m68k.D(0), m68k.D(1))
	e.SubL(m68k.Imm(1), m68k.D(1))
	e.Label("qw_have")
	e.TstL(m68k.D(1))
	e.Bne("qw_space")
	// Full: the synchronous queue blocks at queue-full. The mask is
	// still raised, so no consumer can have drained between the
	// check and the park; the switch-out frame carries the raised
	// level and the resume path lowers it.
	e.MoveL(m68k.A(0), m68k.PreDec(7))
	e.Lea(m68k.Abs(wwait), 0)
	e.Jsr(io.K.BlockOnRoutine())
	e.MoveL(m68k.PostInc(7), m68k.A(0))
	e.AndSR(^uint16(iplMaskBits))
	e.Bra("qw_outer")
	e.Label("qw_space")
	e.AndSR(^uint16(iplMaskBits)) // data movement runs unmasked
	// chunk = min(contig, remaining)
	e.Cmp(4, m68k.D(2), m68k.D(1))
	e.Bls("qw_c1")
	e.MoveL(m68k.D(2), m68k.D(1))
	e.Label("qw_c1")
	e.Lea(m68k.Abs(buf), 1)
	e.AddL(m68k.D(0), m68k.A(1)) // dst = buf + head
	e.SubL(m68k.D(1), m68k.D(2)) // remaining -= chunk
	e.AddL(m68k.D(1), m68k.D(0)) // head += chunk
	e.CmpL(m68k.Imm(size), m68k.D(0))
	e.Bne("qw_w1")
	e.Clr(4, m68k.D(0))
	e.Label("qw_w1")
	e.MoveL(m68k.D(0), m68k.PreDec(7)) // save wrapped head
	emitCopy(e)                        // chunk bytes, clobbers D0/D1
	e.MoveL(m68k.PostInc(7), m68k.D(0))
	e.MoveL(m68k.D(0), m68k.Abs(head)) // publish: last store, as in Figure 1
	// Wake a reader blocked for data.
	e.MoveL(m68k.A(0), m68k.PreDec(7))
	e.Lea(m68k.Abs(rwait), 0)
	e.Jsr(io.K.WakeCellRoutine())
	e.MoveL(m68k.PostInc(7), m68k.A(0))
	e.Bra("qw_outer")

	e.Label("qw_done")
	e.AndSR(^uint16(iplMaskBits))
	e.MoveL(m68k.PostInc(7), m68k.D(0))
	// The gauges measure data-flow rate in bytes (Section 4.4: "the
	// rate at which I/O data flows"), charged once per call: the
	// queue's own gauge plus the opener's descriptor gauge that the
	// fine-grain scheduler reads.
	e.AddL(m68k.D(0), m68k.Abs(gauge))
	if fdGauge != 0 {
		e.AddL(m68k.D(0), m68k.Abs(fdGauge))
	}
	e.Rte()
	e.Label("qw_zero")
	e.Clr(4, m68k.D(0))
	e.Rte()
}

// emitQueueRead emits the body of a blocking bulk read: D1 =
// destination buffer, D2 = length; returns D0 = bytes read (at least
// one, up to length — UNIX semantics) and ends with RTE. Clobbers
// D0-D2, A0, A1.
func (io *IO) emitQueueRead(e *synth.Emitter, q *KQueue, fdGauge uint32) {
	head := q.Addr + KQHead
	tail := q.Addr + KQTail
	buf := q.Addr + KQBuf
	rwait := q.Addr + KQRWait
	wwait := q.Addr + KQWWait
	gauge := q.Addr + KQGauge
	size := q.Size

	// Single-byte fast path: Figure 1's get in its shortest form.
	e.CmpL(m68k.Imm(1), m68k.D(2))
	e.Bne("qr_general")
	e.MoveL(m68k.Abs(tail), m68k.D(0))
	e.Cmp(4, m68k.Abs(head), m68k.D(0))
	e.Beq("qr_general") // empty: fall into the blocking path
	e.MoveL(m68k.D(1), m68k.A(1))
	e.Lea(m68k.Abs(buf), 0)
	e.MoveB(m68k.Idx(0, 0, 0, 1), m68k.D(2))
	e.MoveB(m68k.D(2), m68k.Ind(1)) // *dst = buf[tail]
	e.AddL(m68k.Imm(1), m68k.D(0))
	e.CmpL(m68k.Imm(size), m68k.D(0))
	e.Bne("qr_fw")
	e.Clr(4, m68k.D(0))
	e.Label("qr_fw")
	e.MoveL(m68k.D(0), m68k.Abs(tail))
	e.AddL(m68k.Imm(1), m68k.Abs(gauge))
	if fdGauge != 0 {
		e.AddL(m68k.Imm(1), m68k.Abs(fdGauge))
	}
	e.Lea(m68k.Abs(wwait), 0)
	e.Jsr(io.K.WakeCellRoutine())
	e.MoveL(m68k.Imm(1), m68k.D(0))
	e.Rte()

	// General path. (The empty single-byte case falls through here
	// with D2 still holding 1, so no fixup is needed.)
	e.Label("qr_general")
	e.TstL(m68k.D(2))
	e.Beq("qr_zero")
	e.MoveL(m68k.D(2), m68k.PreDec(7)) // original length
	e.MoveL(m68k.D(1), m68k.A(1))      // destination cursor

	e.Label("qr_outer")
	e.OrSR(iplMaskBits)
	e.TstL(m68k.D(2))
	e.Beq("qr_done")
	e.MoveL(m68k.Abs(head), m68k.D(0))
	e.MoveL(m68k.Abs(tail), m68k.D(1))
	// Contiguous data from tail: head >= tail ? head-tail : size-tail
	e.Cmp(4, m68k.D(1), m68k.D(0)) // flags = head - tail
	e.Bcc("qr_fwd")
	e.MoveL(m68k.Imm(size), m68k.D(0))
	e.Label("qr_fwd")
	e.SubL(m68k.D(1), m68k.D(0)) // contig in D0; tail stays in D1
	e.Bne("qr_data")
	// Empty: if something was already read, return it; else park for
	// data with the mask still raised (no producer can slip in).
	e.Cmp(4, m68k.Ind(7), m68k.D(2))
	e.Bne("qr_done") // partial read satisfied
	e.MoveL(m68k.A(1), m68k.PreDec(7))
	e.Lea(m68k.Abs(rwait), 0)
	e.Jsr(io.K.BlockOnRoutine())
	e.MoveL(m68k.PostInc(7), m68k.A(1))
	e.AndSR(^uint16(iplMaskBits))
	e.Bra("qr_outer")
	e.Label("qr_data")
	e.AndSR(^uint16(iplMaskBits))
	// A0 = buf + tail (source), then swap so D1 = contig for min().
	e.Lea(m68k.Abs(buf), 0)
	e.AddL(m68k.D(1), m68k.A(0))
	e.EorL(m68k.D(1), m68k.D(0)) // swap D0 (contig) <-> D1 (tail)
	e.EorL(m68k.D(0), m68k.D(1))
	e.EorL(m68k.D(1), m68k.D(0)) // now D0 = tail, D1 = contig
	e.Cmp(4, m68k.D(2), m68k.D(1))
	e.Bls("qr_c1")
	e.MoveL(m68k.D(2), m68k.D(1))
	e.Label("qr_c1")
	e.SubL(m68k.D(1), m68k.D(2)) // remaining -= chunk
	e.AddL(m68k.D(1), m68k.D(0)) // tail += chunk
	e.CmpL(m68k.Imm(size), m68k.D(0))
	e.Bne("qr_w1")
	e.Clr(4, m68k.D(0))
	e.Label("qr_w1")
	e.MoveL(m68k.D(0), m68k.PreDec(7)) // save wrapped tail
	emitCopy(e)
	e.MoveL(m68k.PostInc(7), m68k.D(0))
	e.MoveL(m68k.D(0), m68k.Abs(tail))
	// Wake a writer blocked for space.
	e.MoveL(m68k.A(1), m68k.PreDec(7))
	e.Lea(m68k.Abs(wwait), 0)
	e.Jsr(io.K.WakeCellRoutine())
	e.MoveL(m68k.PostInc(7), m68k.A(1))
	e.Bra("qr_outer")

	e.Label("qr_done")
	e.AndSR(^uint16(iplMaskBits))
	e.MoveL(m68k.PostInc(7), m68k.D(0))
	e.SubL(m68k.D(2), m68k.D(0)) // bytes read = requested - remaining
	e.AddL(m68k.D(0), m68k.Abs(gauge))
	if fdGauge != 0 {
		e.AddL(m68k.D(0), m68k.Abs(fdGauge))
	}
	e.Rte()
	e.Label("qr_zero")
	e.Clr(4, m68k.D(0))
	e.Rte()
}
