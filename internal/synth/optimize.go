// Package synth is the Synthesis kernel's code synthesizer: the
// run-time code generation machinery of Section 2.2 of the paper.
//
// It provides the three synthesis methods:
//
//   - Factoring Invariants: code templates carry named holes; at
//     quaject-creation time each hole is bound either to a constant
//     (folded into an immediate operand) or to a memory cell (loaded
//     at run time). See env.go.
//   - Collapsing Layers: the quaject interfacer composes building
//     blocks either through procedure calls or by splicing the callee
//     body inline. See quaject.go.
//   - Executable Data Structures: helpers for emitting and patching
//     self-traversing structures live in asmkit; the kernel's ready
//     queue uses them.
//
// This file implements the peephole optimizer run by the quaject
// creator's optimization stage: constant folding, operand
// substitution (currying), dead-code and dead-store elimination, jump
// threading, and strength reduction, all over asmkit.Program values.
package synth

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// OptStats reports what the optimizer did, for the kernel monitor and
// the size accounting of Section 6.4.
type OptStats struct {
	Rounds       int
	Removed      int // instructions deleted
	Folded       int // instructions rewritten with folded constants
	Substituted  int // operands replaced by immediates
	Threaded     int // branches retargeted past unconditional jumps
	StrengthRed  int // multiplies/divides reduced to shifts
	BytesBefore  int
	BytesAfter   int
	InstrsBefore int
	InstrsAfter  int
}

// Optimize runs the peephole passes to a fixed point (bounded) and
// returns the optimized program plus statistics.
func Optimize(p asmkit.Program) (asmkit.Program, OptStats) {
	var st OptStats
	st.InstrsBefore = len(p.Ins)
	for _, in := range p.Ins {
		st.BytesBefore += in.ByteSize()
	}
	for round := 0; round < 8; round++ {
		st.Rounds = round + 1
		changed := false
		changed = removeNops(&p, &st) || changed
		changed = threadJumps(&p, &st) || changed
		changed = dropBranchToNext(&p, &st) || changed
		changed = deadCode(&p, &st) || changed
		changed = foldConstants(&p, &st) || changed
		changed = strengthReduce(&p, &st) || changed
		changed = redundantMoves(&p, &st) || changed
		changed = deadStores(&p, &st) || changed
		if !changed {
			break
		}
	}
	st.InstrsAfter = len(p.Ins)
	for _, in := range p.Ins {
		st.BytesAfter += in.ByteSize()
	}
	return p, st
}

// leaders marks instructions that are branch targets or fall-through
// points after labels: boundaries across which value tracking must
// not flow.
func leaders(p *asmkit.Program) []bool {
	l := make([]bool, len(p.Ins)+1)
	l[0] = true
	for _, idx := range p.Labels {
		if idx <= len(p.Ins) {
			l[idx] = true
		}
	}
	for _, f := range p.Fixups {
		if t, ok := p.Labels[f.Label]; ok && t <= len(p.Ins) {
			l[t] = true
		}
	}
	return l
}

// compact removes instructions where keep[i] is false, remapping
// labels and fixups. A label on a removed instruction moves to the
// next kept one.
func compact(p *asmkit.Program, keep []bool) {
	remap := make([]int, len(p.Ins)+1)
	n := 0
	for i := range p.Ins {
		remap[i] = n
		if keep[i] {
			n++
		}
	}
	remap[len(p.Ins)] = n
	out := make([]m68k.Instr, 0, n)
	for i, in := range p.Ins {
		if keep[i] {
			out = append(out, in)
		}
	}
	p.Ins = out
	for name, idx := range p.Labels {
		p.Labels[name] = remap[idx]
	}
	fx := p.Fixups[:0]
	for _, f := range p.Fixups {
		if f.Idx < len(keep) && keep[f.Idx] {
			f.Idx = remap[f.Idx]
			fx = append(fx, f)
		}
	}
	p.Fixups = fx
}

func removeNops(p *asmkit.Program, st *OptStats) bool {
	keep := make([]bool, len(p.Ins))
	changed := false
	for i, in := range p.Ins {
		keep[i] = in.Op != m68k.NOP
		if !keep[i] {
			changed = true
			st.Removed++
		}
	}
	if changed {
		compact(p, keep)
	}
	return changed
}

// isBarrier reports whether control never falls through the
// instruction.
func isBarrier(op m68k.Op) bool {
	switch op {
	case m68k.BRA, m68k.JMP, m68k.RTS, m68k.RTE, m68k.HALT:
		return true
	}
	return false
}

// deadCode removes instructions that cannot be reached: those between
// a barrier and the next leader.
func deadCode(p *asmkit.Program, st *OptStats) bool {
	ld := leaders(p)
	keep := make([]bool, len(p.Ins))
	reachable := true
	changed := false
	for i, in := range p.Ins {
		if ld[i] {
			reachable = true
		}
		keep[i] = reachable
		if !reachable {
			changed = true
			st.Removed++
		}
		if isBarrier(in.Op) {
			reachable = false
		}
	}
	if changed {
		compact(p, keep)
	}
	return changed
}

// fixupAt returns the index in p.Fixups of the fixup attached to
// instruction i's destination, or -1.
func fixupAt(p *asmkit.Program, i int) int {
	for fi, f := range p.Fixups {
		if f.Idx == i && !f.Src {
			return fi
		}
	}
	return -1
}

// threadJumps retargets branches whose target is an unconditional BRA.
func threadJumps(p *asmkit.Program, st *OptStats) bool {
	changed := false
	for fi := range p.Fixups {
		f := &p.Fixups[fi]
		if f.Src {
			continue
		}
		if !p.Ins[f.Idx].Op.IsBranch() && p.Ins[f.Idx].Op != m68k.JMP {
			continue
		}
		// Follow chains of BRA with a depth bound.
		label := f.Label
		for depth := 0; depth < 4; depth++ {
			t, ok := p.Labels[label]
			if !ok || t >= len(p.Ins) || p.Ins[t].Op != m68k.BRA {
				break
			}
			tf := fixupAt(p, t)
			if tf < 0 || p.Fixups[tf].Label == label {
				break
			}
			label = p.Fixups[tf].Label
		}
		if label != f.Label {
			f.Label = label
			st.Threaded++
			changed = true
		}
	}
	return changed
}

// dropBranchToNext removes BRA instructions that target the
// immediately following instruction.
func dropBranchToNext(p *asmkit.Program, st *OptStats) bool {
	keep := make([]bool, len(p.Ins))
	changed := false
	for i, in := range p.Ins {
		keep[i] = true
		if in.Op != m68k.BRA {
			continue
		}
		fi := fixupAt(p, i)
		if fi < 0 {
			continue
		}
		if t, ok := p.Labels[p.Fixups[fi].Label]; ok && t == i+1 {
			keep[i] = false
			st.Removed++
			changed = true
		}
	}
	if changed {
		compact(p, keep)
	}
	return changed
}

// writesAllCCR reports whether executing the instruction rewrites the
// full condition-code register, killing any stale flags.
func writesAllCCR(in *m68k.Instr) bool {
	switch in.Op {
	case m68k.ADD, m68k.SUB, m68k.CMP, m68k.TST, m68k.CLR, m68k.NOT,
		m68k.NEG, m68k.AND, m68k.OR, m68k.EOR, m68k.LSL, m68k.LSR,
		m68k.ASR, m68k.MULU, m68k.DIVU, m68k.EXT, m68k.TAS, m68k.CAS:
		return in.Dst.Mode != m68k.ModeAReg
	case m68k.MOVE:
		return in.Dst.Mode != m68k.ModeAReg
	}
	return false
}

// readsCCR reports whether the instruction's behaviour depends on the
// condition codes.
func readsCCR(in *m68k.Instr) bool {
	switch in.Op {
	case m68k.BEQ, m68k.BNE, m68k.BLT, m68k.BLE, m68k.BGT, m68k.BGE,
		m68k.BHI, m68k.BLS, m68k.BCC, m68k.BCS, m68k.BMI, m68k.BPL:
		return true
	case m68k.RTE, m68k.STOP, m68k.ORSR, m68k.ANDSR, m68k.TRAP,
		m68k.MOVEM, m68k.MOVEC, m68k.KCALL, m68k.HALT, m68k.JSR,
		m68k.MOVEFSR, m68k.MOVETSR:
		// Conservative: these expose or save the whole SR.
		return true
	}
	return false
}

// flagsDeadAt reports whether the condition codes produced by
// instruction i are provably never observed: every path from i+1
// reaches a full CCR write before any CCR read, without crossing a
// block boundary (leaders, control transfer, end of program).
func flagsDeadAt(p *asmkit.Program, i int, ld []bool) bool {
	for j := i + 1; j < len(p.Ins); j++ {
		if ld[j] {
			return false // someone may jump here with live flags expected
		}
		in := &p.Ins[j]
		if readsCCR(in) {
			return false
		}
		if writesAllCCR(in) {
			return true
		}
		if isBarrier(in.Op) || in.Op.IsBranch() {
			return false
		}
	}
	return false
}

// regVal tracks the statically known long value of data registers
// within a basic block.
type regVal struct {
	known [8]bool
	val   [8]uint32
}

func (r *regVal) reset() { r.known = [8]bool{} }

func (r *regVal) set(n uint8, v uint32) { r.known[n] = true; r.val[n] = v }

func (r *regVal) kill(n uint8) { r.known[n] = false }

// killOperandTargets invalidates tracking for registers an operand
// writes through side effects (post-increment and pre-decrement touch
// address registers only, which we do not track, so only direct data
// register destinations matter).
func (r *regVal) killDst(o *m68k.Operand) {
	if o.Mode == m68k.ModeDReg {
		r.kill(o.Reg)
	}
}

// foldConstants performs Factoring-Invariants-style constant folding
// and operand substitution inside basic blocks.
//
// Two transformations are applied:
//
//  1. Operand substitution (always safe): a source operand that is a
//     data register with a known value becomes an immediate. The
//     destination value and all flags are unchanged; the instruction
//     usually gets cheaper and downstream folding is enabled.
//  2. Instruction folding (flag-checked): an ALU op with immediate
//     source and a destination register with known value becomes a
//     MOVE of the computed result — but only when the instruction's
//     flags are provably dead, because MOVE sets CCR differently.
func foldConstants(p *asmkit.Program, st *OptStats) bool {
	ld := leaders(p)
	changed := false
	var rv regVal
	// Source-operand fixups make Src.Imm symbolic; never substitute
	// into those instructions.
	srcFixed := make(map[int]bool)
	for _, f := range p.Fixups {
		if f.Src {
			srcFixed[f.Idx] = true
		}
	}
	for i := range p.Ins {
		if ld[i] {
			rv.reset()
		}
		in := &p.Ins[i]

		// Transformation 1: substitute known register sources.
		if !srcFixed[i] && in.Src.Mode == m68k.ModeDReg && rv.known[in.Src.Reg] && in.Size() == 4 {
			switch in.Op {
			case m68k.MOVE, m68k.ADD, m68k.SUB, m68k.AND, m68k.OR,
				m68k.EOR, m68k.CMP, m68k.MULU, m68k.DIVU, m68k.LSL,
				m68k.LSR, m68k.ASR:
				in.Src = m68k.Imm(int32(rv.val[in.Src.Reg]))
				st.Substituted++
				changed = true
			}
		}

		// Transformation 2: fold imm-op-imm into a single MOVE.
		if in.Src.Mode == m68k.ModeImm && in.Dst.Mode == m68k.ModeDReg &&
			in.Size() == 4 && rv.known[in.Dst.Reg] && !srcFixed[i] {
			v := rv.val[in.Dst.Reg]
			imm := uint32(in.Src.Imm)
			folded := false
			var res uint32
			switch in.Op {
			case m68k.ADD:
				res, folded = v+imm, true
			case m68k.SUB:
				res, folded = v-imm, true
			case m68k.AND:
				res, folded = v&imm, true
			case m68k.OR:
				res, folded = v|imm, true
			case m68k.EOR:
				res, folded = v^imm, true
			case m68k.MULU:
				res, folded = v*imm, true
			case m68k.DIVU:
				if imm != 0 {
					res, folded = v/imm, true
				}
			case m68k.LSL:
				res, folded = v<<(imm&63), true
			case m68k.LSR:
				res, folded = v>>(imm&63), true
			}
			if folded && flagsDeadAt(p, i, ld) {
				*in = m68k.Instr{Op: m68k.MOVE, Sz: 4, Src: m68k.Imm(int32(res)), Dst: in.Dst}
				st.Folded++
				changed = true
			}
		}

		// Update value tracking.
		switch {
		case in.Op == m68k.MOVE && in.Dst.Mode == m68k.ModeDReg &&
			in.Src.Mode == m68k.ModeImm && in.Size() == 4 && !srcFixed[i]:
			rv.set(in.Dst.Reg, uint32(in.Src.Imm))
		case in.Op == m68k.CLR && in.Dst.Mode == m68k.ModeDReg && in.Size() == 4:
			rv.set(in.Dst.Reg, 0)
		case in.Op == m68k.JSR || in.Op == m68k.TRAP || in.Op == m68k.KCALL ||
			in.Op == m68k.CAS || in.Op == m68k.MOVEM || in.Op == m68k.DBRA:
			// Calls and block transfers may rewrite registers.
			rv.reset()
		case in.Src.Mode == m68k.ModeImm && in.Dst.Mode == m68k.ModeDReg &&
			in.Size() == 4 && rv.known[in.Dst.Reg] && !srcFixed[i]:
			// Unfolded ALU op (flags were live): the result is still
			// statically known, so keep tracking it for later
			// substitutions.
			v := rv.val[in.Dst.Reg]
			imm := uint32(in.Src.Imm)
			switch in.Op {
			case m68k.ADD:
				rv.set(in.Dst.Reg, v+imm)
			case m68k.SUB:
				rv.set(in.Dst.Reg, v-imm)
			case m68k.AND:
				rv.set(in.Dst.Reg, v&imm)
			case m68k.OR:
				rv.set(in.Dst.Reg, v|imm)
			case m68k.EOR:
				rv.set(in.Dst.Reg, v^imm)
			case m68k.MULU:
				rv.set(in.Dst.Reg, v*imm)
			case m68k.LSL:
				rv.set(in.Dst.Reg, v<<(imm&63))
			case m68k.LSR:
				rv.set(in.Dst.Reg, v>>(imm&63))
			default:
				rv.kill(in.Dst.Reg)
			}
		default:
			rv.killDst(&in.Dst)
			if in.Op == m68k.FMOVE || in.Op == m68k.FMOVEM {
				// FP ops do not touch data registers.
				break
			}
		}
		if in.Op.IsBranch() || isBarrier(in.Op) {
			rv.reset()
		}
	}
	return changed
}

// strengthReduce rewrites multiplies and divides by powers of two as
// shifts (when the flags are dead, since shift CCR differs).
func strengthReduce(p *asmkit.Program, st *OptStats) bool {
	ld := leaders(p)
	changed := false
	for i := range p.Ins {
		in := &p.Ins[i]
		if in.Src.Mode != m68k.ModeImm || in.Dst.Mode != m68k.ModeDReg || in.Size() != 4 {
			continue
		}
		imm := uint32(in.Src.Imm)
		if imm == 0 || imm&(imm-1) != 0 {
			continue // not a power of two
		}
		if imm == 1 {
			continue // handled poorly by shift-0; leave alone
		}
		k := int32(0)
		for v := imm; v > 1; v >>= 1 {
			k++
		}
		switch in.Op {
		case m68k.MULU:
			if flagsDeadAt(p, i, ld) {
				*in = m68k.Instr{Op: m68k.LSL, Sz: 4, Src: m68k.Imm(k), Dst: in.Dst}
				st.StrengthRed++
				changed = true
			}
		case m68k.DIVU:
			if flagsDeadAt(p, i, ld) {
				*in = m68k.Instr{Op: m68k.LSR, Sz: 4, Src: m68k.Imm(k), Dst: in.Dst}
				st.StrengthRed++
				changed = true
			}
		}
	}
	return changed
}

// readsDReg reports whether the instruction reads data register r.
func readsDReg(in *m68k.Instr, r uint8) bool {
	usesInOperand := func(o *m68k.Operand) bool {
		if o.Mode == m68k.ModeDReg && o.Reg == r {
			return true
		}
		if o.Mode == m68k.ModeIdx && o.Idx < 8 && o.Idx == r {
			return true
		}
		return false
	}
	if usesInOperand(&in.Src) {
		return true
	}
	// Destination operand: index registers are always reads; the
	// destination register itself is read by read-modify-write ops.
	if in.Dst.Mode == m68k.ModeIdx && in.Dst.Idx < 8 && in.Dst.Idx == r {
		return true
	}
	if in.Dst.Mode == m68k.ModeDReg && in.Dst.Reg == r {
		switch in.Op {
		case m68k.MOVE, m68k.CLR, m68k.LEA:
			return false
		default:
			return true // ADD/SUB/AND/... read their destination
		}
	}
	switch in.Op {
	case m68k.DBRA:
		return in.Src.Mode == m68k.ModeDReg && in.Src.Reg == r
	case m68k.CAS:
		return in.Src.Reg == r || in.Fp == r
	case m68k.JMP, m68k.JSR:
		return in.Dst.Mode == m68k.ModeDReg && in.Dst.Reg == r
	}
	return false
}

// fullyWritesDReg reports whether the instruction overwrites all of
// data register r without reading it.
func fullyWritesDReg(in *m68k.Instr, r uint8) bool {
	if in.Dst.Mode != m68k.ModeDReg || in.Dst.Reg != r || in.Size() != 4 {
		return false
	}
	switch in.Op {
	case m68k.MOVE:
		return !(in.Src.Mode == m68k.ModeDReg && in.Src.Reg == r)
	case m68k.CLR:
		return true
	}
	return false
}

// hasSideEffects reports whether removing the instruction could be
// observable beyond its register result and flags (memory access,
// address-register autoincrement, control flow, privileged state).
func hasSideEffects(in *m68k.Instr) bool {
	if in.Src.Mode.IsMemory() || in.Dst.Mode.IsMemory() {
		return true
	}
	switch in.Op {
	case m68k.MOVE, m68k.CLR, m68k.ADD, m68k.SUB, m68k.AND, m68k.OR,
		m68k.EOR, m68k.NOT, m68k.NEG, m68k.EXT, m68k.LSL, m68k.LSR,
		m68k.ASR, m68k.MULU, m68k.CMP, m68k.TST:
		return false
	}
	return true // DIVU can trap; everything else is conservative
}

// deadStores removes register writes that are provably overwritten
// before being read, with dead flags. Registers are assumed live at
// block boundaries and at the end of the routine (return values).
func deadStores(p *asmkit.Program, st *OptStats) bool {
	ld := leaders(p)
	keep := make([]bool, len(p.Ins))
	for i := range keep {
		keep[i] = true
	}
	changed := false
	// overwritten[r] is true when register r is rewritten later in
	// the block before any read.
	var overwritten [8]bool
	resetAll := func() { overwritten = [8]bool{} }
	resetAll()
	for i := len(p.Ins) - 1; i >= 0; i-- {
		in := &p.Ins[i]
		if i+1 < len(ld) && ld[i+1] {
			resetAll() // block boundary below us
		}
		barrier := isBarrier(in.Op) || in.Op.IsBranch() ||
			in.Op == m68k.JSR || in.Op == m68k.TRAP || in.Op == m68k.KCALL ||
			in.Op == m68k.MOVEM || in.Op == m68k.STOP
		if barrier {
			resetAll()
		}
		// Candidate for deletion?
		if !barrier && in.Dst.Mode == m68k.ModeDReg && in.Size() == 4 &&
			(in.Op == m68k.MOVE || in.Op == m68k.CLR) &&
			!hasSideEffects(in) && overwritten[in.Dst.Reg] &&
			flagsDeadAt(p, i, ld) {
			keep[i] = false
			st.Removed++
			changed = true
			continue // deleted: contributes no reads or writes
		}
		// Update sets: reads first (they make the register live
		// again), then the write.
		for r := uint8(0); r < 8; r++ {
			if readsDReg(in, r) {
				overwritten[r] = false
			}
		}
		for r := uint8(0); r < 8; r++ {
			if fullyWritesDReg(in, r) {
				overwritten[r] = true
			}
		}
		if ld[i] {
			resetAll()
		}
	}
	if changed {
		compact(p, keep)
	}
	return changed
}

// redundantMoves removes register-to-register move pairs:
// move Dm,Dn immediately followed by move Dn,Dm.
func redundantMoves(p *asmkit.Program, st *OptStats) bool {
	ld := leaders(p)
	keep := make([]bool, len(p.Ins))
	for i := range keep {
		keep[i] = true
	}
	changed := false
	for i := 0; i+1 < len(p.Ins); i++ {
		if ld[i+1] {
			continue
		}
		a, b := &p.Ins[i], &p.Ins[i+1]
		if a.Op == m68k.MOVE && b.Op == m68k.MOVE &&
			a.Size() == 4 && b.Size() == 4 &&
			a.Src.Mode == m68k.ModeDReg && a.Dst.Mode == m68k.ModeDReg &&
			b.Src.Mode == m68k.ModeDReg && b.Dst.Mode == m68k.ModeDReg &&
			a.Src.Reg == b.Dst.Reg && a.Dst.Reg == b.Src.Reg {
			// The second move rewrites the same value; its flag
			// effect equals the first move's, so it is fully
			// redundant.
			keep[i+1] = false
			st.Removed++
			changed = true
		}
	}
	if changed {
		compact(p, keep)
	}
	return changed
}
