package synth

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// This file is the single entry point for quaject construction. Every
// synthesized routine — boot-time shared kernel code, per-thread
// switch procedures, per-open device paths — runs the same pipeline:
//
//	Env binding -> (Collapse) -> Optimize -> ChargeSynthesis ->
//	install -> region registration
//
// Creator.Synthesize and Creator.SynthesizeAt are thin wrappers over
// a Builder, so code synthesized anywhere in the kernel is uniformly
// accounted and, when a measurement plane is attached, attributable
// by name.

// RegionSink receives the code-space extent of every installed
// routine. The profiler implements it; the creator reports through it
// so synthesized code shows up in cycle attribution under its quaject
// and entry name.
type RegionSink interface {
	RegisterRegion(name string, base uint32, instrs int)
}

// CounterPlane supplies VM counter cells for routines built with
// Counted(): the builder stitches one AddL #1,<cell> into the entry of
// the generated code, so the quaject counts its own invocations the
// way the paper's kernel self-measures — the cell is a folded
// absolute address, one instruction per call, and the observability
// layer reads it lazily. Resynthesized is called once per Emit of a
// counted region, counting how often the routine has been
// (re)generated. The kernel wires a metrics-backed implementation;
// nil (the default) disables stitching entirely, so benchmarks see
// byte-identical code.
type CounterPlane interface {
	// InvocationCell returns the cell address to bump on entry to the
	// named region, or 0 to leave the routine uninstrumented. The same
	// region name must yield the same cell across resynthesis.
	InvocationCell(region string) uint32
	// Resynthesized notes one generation of the named region.
	Resynthesized(region string)
}

// Builder assembles one routine through the full creation pipeline.
// Obtain one from Creator.Build, chain the option methods, and call
// Emit with the template closure.
type Builder struct {
	c       *Creator
	q       *Quaject
	entry   string
	region  string
	env     Env
	callees map[uint32]Inlinable
	base    uint32
	size    int
	inPlace bool
	counted bool
}

// Build starts a Builder for one entry point of q (q may be nil for
// free-standing routines such as boot trampolines and test programs).
func (c *Creator) Build(q *Quaject, entry string) *Builder {
	return &Builder{c: c, q: q, entry: entry}
}

// WithEnv installs a complete hole environment (Factoring Invariants:
// constants fold into immediates, cells stay memory references).
func (b *Builder) WithEnv(env Env) *Builder {
	b.env = env
	return b
}

// Bind adds one hole binding, creating the environment on first use.
func (b *Builder) Bind(hole string, bind Binding) *Builder {
	if b.env == nil {
		b.env = Env{}
	}
	b.env[hole] = bind
	return b
}

// Inline registers a callee for the Collapsing Layers stage: after
// the template runs, every `jsr addr` call site is spliced with the
// callee body before optimization.
func (b *Builder) Inline(addr uint32, callee Inlinable) *Builder {
	if b.callees == nil {
		b.callees = make(map[uint32]Inlinable)
	}
	b.callees[addr] = callee
	return b
}

// At directs the install into a preallocated code region of the given
// size instead of appending to code space; slack is NOP-filled so
// stale tail instructions cannot execute (in-place resynthesis).
func (b *Builder) At(base uint32, size int) *Builder {
	b.base = base
	b.size = size
	b.inPlace = true
	return b
}

// Named overrides the attribution-region name. The default is
// "<quaject>.<entry>" (or the bare entry name for a nil quaject).
func (b *Builder) Named(region string) *Builder {
	b.region = region
	return b
}

// Counted opts this routine into invocation counting: when the
// creator has a CounterPlane attached, the emitted code starts with
// one AddL #1 into the plane's cell for this region. Without a plane
// the option is inert and the generated code is unchanged.
func (b *Builder) Counted() *Builder {
	b.counted = true
	return b
}

// regionName resolves the attribution name used for region
// registration and invocation counting.
func (b *Builder) regionName() string {
	if b.region != "" {
		return b.region
	}
	if b.q != nil && b.q.Name != "" {
		return b.q.Name + "." + b.entry
	}
	return b.entry
}

// Emit runs the template closure and the rest of the pipeline, then
// returns the installed entry address.
func (b *Builder) Emit(emit func(*Emitter)) uint32 {
	c := b.c
	name := b.regionName()
	e := NewEmitter(b.env)
	if b.counted && c.Counters != nil {
		// Self-measurement stitched into the quaject: one AddL to a
		// folded cell address before the template body runs.
		if cell := c.Counters.InvocationCell(name); cell != 0 {
			e.AddL(m68k.Imm(1), m68k.Abs(cell))
		}
		c.Counters.Resynthesized(name)
	}
	emit(e)
	p := e.Export()
	if len(b.callees) > 0 {
		p, _ = Collapse(p, b.callees)
	}
	var st OptStats
	if c.DoOptimize {
		p, st = Optimize(p)
	} else {
		st.InstrsBefore = len(p.Ins)
		st.InstrsAfter = len(p.Ins)
		for _, in := range p.Ins {
			st.BytesBefore += in.ByteSize()
		}
		st.BytesAfter = st.BytesBefore
	}
	c.LastStats = st
	if b.inPlace && len(p.Ins) > b.size {
		panic("synth: routine does not fit its preallocated region: " + b.entry)
	}
	if c.ChargeTime {
		ChargeSynthesis(c.M, st.InstrsBefore)
	}
	bb := asmkit.FromProgram(p)
	addr := b.base
	regionLen := len(p.Ins)
	if b.inPlace {
		bb.LinkAt(c.M, b.base)
		for i := len(p.Ins); i < b.size; i++ {
			c.M.PatchCode(b.base+uint32(i), m68k.Instr{Op: m68k.NOP})
		}
		// The whole reserved region belongs to this routine: time in
		// the NOP slack (if ever reached) is still its time.
		regionLen = b.size
	} else {
		addr = bb.Link(c.M)
	}
	if b.q != nil {
		b.q.Entries[b.entry] = addr
		b.q.Instrs += st.InstrsAfter
		b.q.Bytes += st.BytesAfter
	}
	c.TotalInstrs += st.InstrsAfter
	c.TotalBytes += st.BytesAfter
	c.Routines++
	if c.Regions != nil {
		c.Regions.RegisterRegion(name, addr, regionLen)
	}
	return addr
}
