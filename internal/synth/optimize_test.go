package synth_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

func newM() *m68k.Machine {
	m := m68k.New(m68k.Config{MemSize: 1 << 16})
	stub := m.Emit([]m68k.Instr{{Op: m68k.HALT}})
	m.VBR = 0x100
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(m.VBR+uint32(v)*4, 4, stub)
	}
	m.A[7] = 0x8000
	m.SSP = 0x8000
	return m
}

// runProgram links p on a fresh machine and runs it to completion.
func runProgram(p asmkit.Program) (*m68k.Machine, error) {
	m := newM()
	b := asmkit.FromProgram(p)
	m.PC = b.Link(m)
	err := m.Run(1_000_000)
	if errors.Is(err, m68k.ErrHalted) {
		err = nil
	}
	return m, err
}

func optimizeOf(b *asmkit.Builder) (asmkit.Program, asmkit.Program, synth.OptStats) {
	p := b.Export()
	q, st := synth.Optimize(b.Export())
	return p, q, st
}

func TestConstantFoldingCollapsesChain(t *testing.T) {
	b := asmkit.New()
	b.MoveL(m68k.Imm(10), m68k.D(0))
	b.AddL(m68k.Imm(5), m68k.D(0))
	b.MoveL(m68k.D(0), m68k.D(1)) // gets substituted to #15
	b.MoveL(m68k.D(1), m68k.Abs(0x4000))
	b.Halt()
	before, after, st := optimizeOf(b)
	if st.Folded == 0 && st.Substituted == 0 {
		t.Fatalf("no folding happened; stats %+v", st)
	}
	m1, err1 := runProgram(before)
	m2, err2 := runProgram(after)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if m1.Peek(0x4000, 4) != 15 || m2.Peek(0x4000, 4) != 15 {
		t.Errorf("results differ: %d vs %d", m1.Peek(0x4000, 4), m2.Peek(0x4000, 4))
	}
}

func TestFoldRespectsLiveFlags(t *testing.T) {
	// ADD's carry flag is read by the following BCS: the optimizer
	// must not rewrite the ADD into a MOVE.
	b := asmkit.New()
	b.MoveL(m68k.Imm(int32(-0x100)), m68k.D(0))
	b.AddL(m68k.Imm(0x200), m68k.D(0)) // carries
	b.Bcs("carried")
	b.MoveL(m68k.Imm(111), m68k.Abs(0x4000))
	b.Halt()
	b.Label("carried")
	b.MoveL(m68k.Imm(222), m68k.Abs(0x4000))
	b.Halt()
	before, after, _ := optimizeOf(b)
	m1, _ := runProgram(before)
	m2, _ := runProgram(after)
	if got1, got2 := m1.Peek(0x4000, 4), m2.Peek(0x4000, 4); got1 != 222 || got2 != 222 {
		t.Errorf("flag-dependent path broken: before=%d after=%d, want 222", got1, got2)
	}
}

func TestDeadCodeRemoval(t *testing.T) {
	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.D(0))
	b.Bra("end")
	b.MoveL(m68k.Imm(99), m68k.D(0)) // unreachable
	b.MoveL(m68k.Imm(98), m68k.D(1)) // unreachable
	b.Label("end")
	b.Halt()
	_, after, st := optimizeOf(b)
	if st.Removed < 2 {
		t.Errorf("removed %d instructions, want >= 2", st.Removed)
	}
	m, err := runProgram(after)
	if err != nil {
		t.Fatal(err)
	}
	if m.D[0] != 1 {
		t.Errorf("D0 = %d, want 1", m.D[0])
	}
}

func TestBranchToNextRemoved(t *testing.T) {
	b := asmkit.New()
	b.Bra("next")
	b.Label("next")
	b.MoveL(m68k.Imm(5), m68k.D(0))
	b.Halt()
	_, after, st := optimizeOf(b)
	if st.Removed != 1 {
		t.Errorf("removed = %d, want 1", st.Removed)
	}
	m, err := runProgram(after)
	if err != nil {
		t.Fatal(err)
	}
	if m.D[0] != 5 {
		t.Errorf("D0 = %d", m.D[0])
	}
}

func TestJumpThreading(t *testing.T) {
	b := asmkit.New()
	b.MoveL(m68k.Imm(0), m68k.D(0))
	b.CmpL(m68k.Imm(0), m68k.D(0))
	b.Beq("hop") // threads through to "end"
	b.MoveL(m68k.Imm(1), m68k.D(5))
	b.Halt()
	b.Label("hop")
	b.Bra("end")
	b.MoveL(m68k.Imm(2), m68k.D(5)) // dead
	b.Label("end")
	b.MoveL(m68k.Imm(3), m68k.D(6))
	b.Halt()
	_, after, st := optimizeOf(b)
	if st.Threaded == 0 {
		t.Error("no branches threaded")
	}
	m, err := runProgram(after)
	if err != nil {
		t.Fatal(err)
	}
	if m.D[6] != 3 || m.D[5] != 0 {
		t.Errorf("D5=%d D6=%d, want 0,3", m.D[5], m.D[6])
	}
}

func TestStrengthReduction(t *testing.T) {
	b := asmkit.New()
	b.MoveL(m68k.Abs(0x4000), m68k.D(0)) // unknown value
	b.Mulu(m68k.Imm(8), m68k.D(0))
	b.MoveL(m68k.D(0), m68k.Abs(0x4004))
	b.Halt()
	before, after, st := optimizeOf(b)
	if st.StrengthRed != 1 {
		t.Errorf("strength reductions = %d, want 1", st.StrengthRed)
	}
	m1, _ := runProgram(before)
	m2, _ := runProgram(after)
	// Both start with 0 at 0x4000; poke a value and re-run via fresh
	// machines to confirm equivalence with a nonzero input.
	run := func(p asmkit.Program) uint32 {
		m := newM()
		m.Poke(0x4000, 4, 37)
		bb := asmkit.FromProgram(p)
		m.PC = bb.Link(m)
		if err := m.Run(100000); !errors.Is(err, m68k.ErrHalted) {
			t.Fatal(err)
		}
		return m.Peek(0x4004, 4)
	}
	if got1, got2 := run(before), run(after); got1 != got2 || got2 != 37*8 {
		t.Errorf("mulu/lsl mismatch: %d vs %d", got1, got2)
	}
	_ = m1
	_ = m2
}

func TestNopRemoval(t *testing.T) {
	b := asmkit.New()
	b.Nop()
	b.MoveL(m68k.Imm(1), m68k.D(0))
	b.Nop()
	b.Halt()
	_, after, st := optimizeOf(b)
	if st.Removed != 2 {
		t.Errorf("removed = %d, want 2", st.Removed)
	}
	if len(after.Ins) != 2 {
		t.Errorf("optimized length = %d, want 2", len(after.Ins))
	}
}

func TestOptimizedCodeIsShorterAndCheaper(t *testing.T) {
	// A generic-looking routine: loads invariants from memory cells,
	// computes with them. Specialization via Env plus optimization
	// must produce strictly shorter code computing the same result.
	genericEnv := synth.Env{
		"bufsize": synth.CellAt(0x4100),
		"base":    synth.CellAt(0x4104),
	}
	constEnv := synth.Env{
		"bufsize": synth.ConstOf(1024),
		"base":    synth.ConstOf(0x5000),
	}
	tmpl := func(e *synth.Emitter) {
		e.LoadHole("bufsize", m68k.D(0))
		e.Mulu(m68k.Imm(2), m68k.D(0))
		e.LoadHole("base", m68k.D(1))
		e.AddL(m68k.D(1), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Abs(0x4200))
		e.Halt()
	}
	build := func(env synth.Env) (asmkit.Program, synth.OptStats) {
		e := synth.NewEmitter(env)
		tmpl(e)
		return synth.Optimize(e.Export())
	}
	gp, _ := build(genericEnv)
	sp, sst := build(constEnv)
	if len(sp.Ins) >= len(gp.Ins) {
		t.Errorf("specialized len %d not shorter than generic %d", len(sp.Ins), len(gp.Ins))
	}
	if sst.Folded == 0 && sst.Substituted == 0 {
		t.Error("specialization did not fold anything")
	}
	// Run both; generic needs its cells populated.
	mg := newM()
	mg.Poke(0x4100, 4, 1024)
	mg.Poke(0x4104, 4, 0x5000)
	mg.PC = asmkit.FromProgram(gp).Link(mg)
	if err := mg.Run(100000); !errors.Is(err, m68k.ErrHalted) {
		t.Fatal(err)
	}
	ms, err := runProgram(sp)
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(1024*2 + 0x5000)
	if mg.Peek(0x4200, 4) != want || ms.Peek(0x4200, 4) != want {
		t.Errorf("generic=%d specialized=%d want=%d", mg.Peek(0x4200, 4), ms.Peek(0x4200, 4), want)
	}
	// The specialized version must also execute fewer cycles.
	if ms.Cycles >= mg.Cycles {
		t.Errorf("specialized cycles %d >= generic %d", ms.Cycles, mg.Cycles)
	}
}

// ---------------------------------------------------------------------
// Property test: for random programs, the optimizer preserves the
// machine state observable at HALT (registers and memory).

// genProgram builds a random but well-formed program from the seed:
// straight-line ALU code over D0-D7 and a scratch array, with forward
// conditional branches.
func genProgram(seed int64) asmkit.Program {
	rng := rand.New(rand.NewSource(seed))
	b := asmkit.New()
	b.Lea(m68k.Abs(0x4000), 0)

	type pending struct {
		label string
		left  int
	}
	var pend []pending
	labelN := 0

	place := func() {
		kept := pend[:0]
		for _, p := range pend {
			p.left--
			if p.left <= 0 {
				b.Label(p.label)
			} else {
				kept = append(kept, p)
			}
		}
		pend = kept
	}

	n := 10 + rng.Intn(40)
	for i := 0; i < n; i++ {
		dn := uint8(rng.Intn(8))
		sn := uint8(rng.Intn(8))
		imm := int32(rng.Intn(1 << 16))
		off := int32(rng.Intn(64)) * 4
		switch rng.Intn(14) {
		case 0:
			b.MoveL(m68k.Imm(imm), m68k.D(dn))
		case 1:
			b.MoveL(m68k.D(sn), m68k.D(dn))
		case 2:
			b.MoveL(m68k.D(sn), m68k.Disp(off, 0))
		case 3:
			b.MoveL(m68k.Disp(off, 0), m68k.D(dn))
		case 4:
			b.AddL(m68k.Imm(imm), m68k.D(dn))
		case 5:
			b.SubL(m68k.D(sn), m68k.D(dn))
		case 6:
			b.AndL(m68k.Imm(imm|1), m68k.D(dn))
		case 7:
			b.OrL(m68k.D(sn), m68k.D(dn))
		case 8:
			b.EorL(m68k.Imm(imm), m68k.D(dn))
		case 9:
			b.Mulu(m68k.Imm(int32(1<<uint(rng.Intn(8)))), m68k.D(dn))
		case 10:
			b.LslL(m68k.Imm(int32(rng.Intn(31))), m68k.D(dn))
		case 11:
			b.CmpL(m68k.D(sn), m68k.D(dn))
		case 12:
			b.TstL(m68k.D(dn))
		case 13:
			// Forward conditional branch over 1-4 instructions.
			labelN++
			lbl := fmt.Sprintf("L%d", labelN)
			conds := []func(string) *asmkit.Builder{b.Beq, b.Bne, b.Bcs, b.Bcc, b.Bmi, b.Bpl}
			conds[rng.Intn(len(conds))](lbl)
			pend = append(pend, pending{label: lbl, left: 1 + rng.Intn(4)})
		}
		place()
	}
	for _, p := range pend {
		b.Label(p.label)
	}
	b.Halt()
	return b.Export()
}

func TestOptimizerPreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		p := genProgram(seed)
		q, _ := synth.Optimize(genProgram(seed))
		m1, err1 := runProgram(p)
		m2, err2 := runProgram(q)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: error mismatch %v vs %v", seed, err1, err2)
			return false
		}
		for i := 0; i < 8; i++ {
			if m1.D[i] != m2.D[i] {
				t.Logf("seed %d: D%d %#x vs %#x", seed, i, m1.D[i], m2.D[i])
				return false
			}
		}
		for i := 0; i < 7; i++ {
			if m1.A[i] != m2.A[i] {
				t.Logf("seed %d: A%d %#x vs %#x", seed, i, m1.A[i], m2.A[i])
				return false
			}
		}
		for a := uint32(0x4000); a < 0x4400; a += 4 {
			if m1.Peek(a, 4) != m2.Peek(a, 4) {
				t.Logf("seed %d: mem[%#x] %#x vs %#x", seed, a, m1.Peek(a, 4), m2.Peek(a, 4))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCreatorAccountsSizes(t *testing.T) {
	m := newM()
	c := synth.NewCreator(m)
	q := c.NewQuaject("demo")
	addr := c.Synthesize(q, "run", synth.Env{"x": synth.ConstOf(7)}, func(e *synth.Emitter) {
		e.LoadHole("x", m68k.D(0))
		e.AddL(m68k.Imm(1), m68k.D(0))
		e.Rts()
	})
	if q.Entry("run") != addr {
		t.Error("entry not recorded")
	}
	if q.Instrs == 0 || q.Bytes == 0 {
		t.Error("size accounting empty")
	}
	if c.TotalBytes != q.Bytes || c.Routines != 1 {
		t.Errorf("creator accounting: %+v", c)
	}
}

func TestCreatorChargesSynthesisTime(t *testing.T) {
	m := newM()
	c := synth.NewCreator(m)
	c.ChargeTime = true
	before := m.Cycles
	c.Synthesize(nil, "r", nil, func(e *synth.Emitter) {
		for i := 0; i < 10; i++ {
			e.Nop()
		}
		e.Rts()
	})
	if m.Cycles-before != synth.SynthesisCycles(11) {
		t.Errorf("charged %d cycles, want %d", m.Cycles-before, synth.SynthesisCycles(11))
	}
}

func TestSynthesizeAtPadsWithNops(t *testing.T) {
	m := newM()
	c := synth.NewCreator(m)
	base := m.AllocCode(10)
	c.SynthesizeAt(nil, "r", base, 10, nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(9), m68k.D(0))
		e.Rts()
	})
	// Region beyond the routine must be NOPs, not zero-value MOVEs.
	for i := uint32(2); i < 10; i++ {
		if m.Code[base+i].Op != m68k.NOP {
			t.Fatalf("slot %d not padded: %v", i, m.Code[base+i])
		}
	}
}
