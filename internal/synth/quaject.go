package synth

import (
	"sort"

	"synthesis/internal/m68k"
)

// Quajects (Section 2.3) are the kernel's collections of procedures
// and data encapsulating hardware resources: threads, device servers,
// queues, files. A quaject's procedures are synthesized at run time
// by the quaject creator; its entry points are dynamically linked
// into the invoking thread by the quaject interfacer.

// Quaject records the synthesized routines making up one kernel
// object, with the size accounting used in Section 6.4.
type Quaject struct {
	Name    string
	Entries map[string]uint32 // entry-point name -> code address
	Instrs  int               // synthesized instructions
	Bytes   int               // synthesized code bytes (encoded estimate)
}

// Entry returns the code address of a named entry point.
func (q *Quaject) Entry(name string) uint32 {
	addr, ok := q.Entries[name]
	if !ok {
		panic("synth: quaject " + q.Name + " has no entry " + name)
	}
	return addr
}

// EntryNames returns the entry-point names in sorted order.
func (q *Quaject) EntryNames() []string {
	names := make([]string, 0, len(q.Entries))
	for n := range q.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Creator is the quaject creator: it runs a template's three stages —
// allocation (code space), factorization (hole binding through the
// Env given to the template closure), and optimization (the peephole
// passes) — and installs the result in the machine.
//
// DoOptimize exists for the ablation benchmarks: with it off, the
// factorized but unoptimized code is installed, isolating the
// contribution of the optimization stage. ChargeTime models the cost
// of running the synthesizer itself on the machine's clock (the 40%
// of open's 49 microseconds that Section 6.3 attributes to code
// synthesis); it is off for boot-time synthesis, which the paper does
// not charge to any kernel call.
type Creator struct {
	M          *m68k.Machine
	DoOptimize bool
	ChargeTime bool

	// Regions, when non-nil, receives the address range of every
	// installed routine so a measurement plane can attribute cycles
	// to named quaject code. See builder.go.
	Regions RegionSink

	// Counters, when non-nil, provides invocation-counter cells for
	// routines built with Builder.Counted (see CounterPlane in
	// builder.go). Nil leaves every generated routine untouched.
	Counters CounterPlane

	// Accounting across all quajects, for the Section 6.4 table.
	TotalInstrs int
	TotalBytes  int
	Routines    int
	LastStats   OptStats
}

// NewCreator returns a creator with optimization on and time charging
// off (boot mode).
func NewCreator(m *m68k.Machine) *Creator {
	return &Creator{M: m, DoOptimize: true}
}

// NewQuaject starts an empty quaject record.
func (c *Creator) NewQuaject(name string) *Quaject {
	return &Quaject{Name: name, Entries: make(map[string]uint32)}
}

// Synthesize runs a template closure against the environment, applies
// the optimization stage, installs the code, records it under the
// quaject's entry name, and returns the entry address. It is a
// convenience wrapper over the Builder pipeline (builder.go).
func (c *Creator) Synthesize(q *Quaject, entry string, env Env, emit func(*Emitter)) uint32 {
	return c.Build(q, entry).WithEnv(env).Emit(emit)
}

// SynthesizeAt is Synthesize into a preallocated code region, used
// when a routine must be rebuilt in place (the context-switch
// resynthesis after the first floating-point trap rewrites the
// thread's switch code without moving it, Section 4.2). The region
// must hold the routine; any slack is filled with NOPs so stale tail
// instructions cannot execute.
func (c *Creator) SynthesizeAt(q *Quaject, entry string, base uint32, size int, env Env, emit func(*Emitter)) {
	c.Build(q, entry).WithEnv(env).At(base, size).Emit(emit)
}
