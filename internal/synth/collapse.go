package synth

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// Collapsing Layers (Section 2.2): "eliminates unnecessary procedure
// calls ... vertically for layered modules". The quaject interfacer
// applies it in two ways. Most collapsing in this codebase happens at
// template-composition time (an emitter helper is called instead of a
// JSR being emitted — the tty's cooked read inlines the raw
// get-character this way). This file provides the other form: an
// inliner that splices already-emitted leaf routines into a caller's
// Program, replacing `jsr <addr>` call sites, for when the layers
// were composed before the optimization ran (a boot-time pass over a
// server pipeline, as in Section 5.4).

// Inlinable marks a routine the inliner may splice: a leaf Program
// whose body ends with a single RTS and contains no other returns or
// stack-discipline surprises. RegisterInline performs the checks.
type Inlinable struct {
	prog asmkit.Program
}

// RegisterInline validates a routine for inlining: it must contain
// exactly one RTS, as its final instruction, and must not contain
// JSR/TRAP/RTE (non-leaf or context-switching callees stay calls).
func RegisterInline(p asmkit.Program) (Inlinable, error) {
	if len(p.Ins) == 0 {
		return Inlinable{}, fmt.Errorf("synth: empty inline candidate")
	}
	for i, in := range p.Ins {
		switch in.Op {
		case m68k.RTS:
			if i != len(p.Ins)-1 {
				return Inlinable{}, fmt.Errorf("synth: inline candidate has an interior rts at %d", i)
			}
		case m68k.JSR, m68k.TRAP, m68k.RTE, m68k.HALT, m68k.STOP:
			return Inlinable{}, fmt.Errorf("synth: inline candidate is not a leaf (%v at %d)", in.Op, i)
		}
	}
	if p.Ins[len(p.Ins)-1].Op != m68k.RTS {
		return Inlinable{}, fmt.Errorf("synth: inline candidate does not end with rts")
	}
	return Inlinable{prog: p}, nil
}

// Collapse splices registered callees into the caller: every
// `jsr <addr>` whose absolute target is a key of callees is replaced
// by the callee's body (labels renamed per call site, the final RTS
// dropped). Call sites whose target is not registered are left alone.
// Returns the collapsed program and the number of calls eliminated.
func Collapse(caller asmkit.Program, callees map[uint32]Inlinable) (asmkit.Program, int) {
	out := asmkit.Program{Labels: make(map[string]int)}
	collapsed := 0

	// Map old instruction index -> new index, for fixup/label
	// remapping after the splice.
	remap := make([]int, len(caller.Ins)+1)

	// Fixups attached to JSR destinations are label-based; only
	// absolute (non-fixup) JSRs can be matched against callee
	// addresses.
	fixupOnDst := make(map[int]bool)
	for _, f := range caller.Fixups {
		if !f.Src {
			fixupOnDst[f.Idx] = true
		}
	}

	spliceN := 0
	for i, in := range caller.Ins {
		remap[i] = len(out.Ins)
		target := uint32(in.Dst.Imm)
		callee, ok := callees[target]
		if in.Op == m68k.JSR && in.Dst.Mode == m68k.ModeAbs && !fixupOnDst[i] && ok {
			// Splice the callee body, dropping its trailing RTS.
			spliceN++
			base := len(out.Ins)
			body := callee.prog.Ins[:len(callee.prog.Ins)-1]
			out.Ins = append(out.Ins, body...)
			prefix := fmt.Sprintf("__inl%d_", spliceN)
			for name, idx := range callee.prog.Labels {
				if idx >= len(callee.prog.Ins)-1 {
					// A label on the RTS lands after the body.
					idx = len(body)
				}
				out.Labels[prefix+name] = base + idx
			}
			for _, f := range callee.prog.Fixups {
				out.Fixups = append(out.Fixups, asmkit.Fixup{
					Idx: base + f.Idx, Label: prefix + f.Label, Src: f.Src,
				})
			}
			collapsed++
			continue
		}
		out.Ins = append(out.Ins, in)
	}
	remap[len(caller.Ins)] = len(out.Ins)

	for name, idx := range caller.Labels {
		out.Labels[name] = remap[idx]
	}
	for _, f := range caller.Fixups {
		out.Fixups = append(out.Fixups, asmkit.Fixup{
			Idx: remap[f.Idx], Label: f.Label, Src: f.Src,
		})
	}
	return out, collapsed
}
