package synth

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// Factoring Invariants (Section 2.2): "bypasses redundant
// computations, much like constant folding". A code template names
// the quantities it depends on as holes; when a quaject is created
// the creator binds each hole either to a constant — which the
// emitter folds straight into immediate operands, and which the
// optimizer then propagates — or to a memory cell holding a value
// that can still change, which the emitter loads at run time.

// Binding gives a hole its value.
type Binding struct {
	Const bool
	Val   uint32 // the constant, or the memory address of the cell
}

// ConstOf binds a hole to an invariant value.
func ConstOf(v uint32) Binding { return Binding{Const: true, Val: v} }

// CellAt binds a hole to a mutable memory cell.
func CellAt(addr uint32) Binding { return Binding{Const: false, Val: addr} }

// Env maps hole names to bindings.
type Env map[string]Binding

// Emitter wraps an asmkit.Builder with hole resolution. Templates are
// written against the Emitter so the same template text serves both
// the generic and the specialized instantiation: the difference is
// entirely in the Env.
type Emitter struct {
	*asmkit.Builder
	env Env
}

// NewEmitter creates an emitter over a fresh builder.
func NewEmitter(env Env) *Emitter {
	return &Emitter{Builder: asmkit.New(), env: env}
}

// binding fetches a hole's binding or panics: a template referencing
// an unbound hole is a kernel bug, not a run-time condition.
func (e *Emitter) binding(hole string) Binding {
	b, ok := e.env[hole]
	if !ok {
		panic(fmt.Sprintf("synth: unbound hole %q", hole))
	}
	return b
}

// HoleOperand returns an operand for reading the hole's value: an
// immediate when the hole is invariant, a memory reference otherwise.
// This is the basic Factoring Invariants step — a constant binding
// removes a memory indirection from the synthesized code.
func (e *Emitter) HoleOperand(hole string) m68k.Operand {
	b := e.binding(hole)
	if b.Const {
		return m68k.Imm(int32(b.Val))
	}
	return m68k.Abs(b.Val)
}

// LoadHole emits code moving the hole's value into a register.
func (e *Emitter) LoadHole(hole string, dst m68k.Operand) *Emitter {
	e.MoveL(e.HoleOperand(hole), dst)
	return e
}

// LeaHole emits code loading the hole's value into an address
// register. For a constant binding this is a pure immediate load (no
// memory reference); for a cell binding the address is fetched from
// memory.
func (e *Emitter) LeaHole(hole string, an uint8) *Emitter {
	b := e.binding(hole)
	if b.Const {
		e.Lea(m68k.Abs(b.Val), an)
	} else {
		e.MoveL(m68k.Abs(b.Val), m68k.A(an))
	}
	return e
}

// IsConst reports whether the hole is bound to an invariant, letting
// templates choose entirely different code shapes for known values
// (the "bypass redundant computation" case: e.g. the synthesized read
// for /dev/null is a constant-return stub).
func (e *Emitter) IsConst(hole string) bool { return e.binding(hole).Const }

// ConstVal returns the invariant value of a constant-bound hole.
func (e *Emitter) ConstVal(hole string) uint32 {
	b := e.binding(hole)
	if !b.Const {
		panic(fmt.Sprintf("synth: hole %q is not constant-bound", hole))
	}
	return b.Val
}
