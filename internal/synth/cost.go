package synth

import "synthesis/internal/m68k"

// Synthesis cost model.
//
// The Synthesis kernel's code generator is itself kernel code, so its
// running time is part of the calls that invoke it: Section 6.3
// attributes about 40% of open(/dev/null)'s 49 microseconds to code
// synthesis, and 19 further microseconds in open(/dev/tty) to
// "generating real code to read and write". Our synthesizer runs in
// Go (it is the one part of the kernel not expressed as VM code — see
// DESIGN.md Section 4), so its cost is charged to the machine's clock
// by this model: a fixed part for template lookup and code-space
// allocation plus a per-template-instruction part for emission and
// peephole optimization.
//
// Calibration: at the SUN 3/160 emulation point (16 MHz), the
// /dev/null open synthesizes ~24 template instructions, which with
// the constants below charges 120 + 24*8 = 312 cycles = 19.5
// microseconds — 40% of the measured 49 microsecond open, matching
// the paper's split.
const (
	SynthFixedCycles    = 120
	SynthPerInstrCycles = 8
)

// SynthesisCycles returns the modeled cost of synthesizing a routine
// from a template with n instructions.
func SynthesisCycles(n int) uint64 {
	return SynthFixedCycles + uint64(n)*SynthPerInstrCycles
}

// ChargeSynthesis charges the modeled synthesis time to the machine.
// The charge goes through Machine.Charge so an attached profiler can
// attribute host-side synthesis time that lands between instructions
// (synthesis triggered from inside a kernel call is simply part of
// that call's step delta).
func ChargeSynthesis(m *m68k.Machine, templateInstrs int) {
	m.Charge(SynthesisCycles(templateInstrs), "synthesis")
}
