package synth_test

import (
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// calleeProg builds a leaf routine with an internal loop: D0 += 5 via
// five increments (exercising label renaming during the splice).
func calleeProg() asmkit.Program {
	b := asmkit.New()
	b.MoveL(m68k.Imm(4), m68k.D(1))
	b.Label("loop")
	b.AddL(m68k.Imm(1), m68k.D(0))
	b.Dbra(1, "loop")
	b.Rts()
	return b.Export()
}

func TestCollapseInlinesLeafCalls(t *testing.T) {
	// The layered version needs the callee installed in its machine.
	mLayered := newM()
	calleeAddr := asmkit.FromProgram(calleeProg()).Link(mLayered)

	inl, err := synth.RegisterInline(calleeProg())
	if err != nil {
		t.Fatal(err)
	}

	caller := asmkit.New()
	caller.Clr(4, m68k.D(0))
	caller.Jsr(calleeAddr)
	caller.AddL(m68k.Imm(100), m68k.D(0))
	caller.Jsr(calleeAddr)
	caller.Halt()
	layered := caller.Export()

	collapsed, n := synth.Collapse(layered, map[uint32]synth.Inlinable{calleeAddr: inl})
	if n != 2 {
		t.Fatalf("collapsed %d call sites, want 2", n)
	}
	for i, in := range collapsed.Ins {
		if in.Op == m68k.JSR {
			t.Errorf("jsr survives at %d after collapsing", i)
		}
	}

	// Both versions compute the same value; the collapsed one is
	// cheaper (no jsr/rts overhead, no stack traffic).
	mLayered.PC = asmkit.FromProgram(layered).Link(mLayered)
	layeredStart := mLayered.Cycles
	if err := mLayered.Run(1_000_000); err != m68k.ErrHalted {
		t.Fatalf("layered run: %v", err)
	}
	layeredCycles := mLayered.Cycles - layeredStart

	mCollapsed, err2 := runProgram(collapsed)
	if err2 != nil {
		t.Fatal(err2)
	}
	if mLayered.D[0] != 110 || mCollapsed.D[0] != 110 {
		t.Fatalf("results: layered %d, collapsed %d, want 110", mLayered.D[0], mCollapsed.D[0])
	}
	if mCollapsed.Cycles >= layeredCycles {
		t.Errorf("collapsed (%d cycles) not cheaper than layered (%d)", mCollapsed.Cycles, layeredCycles)
	}
}

func TestCollapseLeavesUnregisteredCalls(t *testing.T) {
	caller := asmkit.New()
	caller.Jsr(12345)
	caller.Halt()
	p, n := synth.Collapse(caller.Export(), nil)
	if n != 0 {
		t.Fatalf("collapsed %d sites with no registry", n)
	}
	if p.Ins[0].Op != m68k.JSR {
		t.Error("unregistered call was rewritten")
	}
}

func TestCollapsePreservesCallerBranches(t *testing.T) {
	const calleeAddr = 55555 // never resolved: the splice removes the call
	inl, _ := synth.RegisterInline(calleeProg())

	caller := asmkit.New()
	caller.Clr(4, m68k.D(0))
	caller.MoveL(m68k.Imm(2), m68k.D(3))
	caller.Label("again")
	caller.Jsr(calleeAddr)
	caller.SubL(m68k.Imm(1), m68k.D(3))
	caller.Bne("again") // loops over the spliced body
	caller.Halt()
	collapsed, n := synth.Collapse(caller.Export(), map[uint32]synth.Inlinable{calleeAddr: inl})
	if n != 1 {
		t.Fatalf("collapsed %d, want 1", n)
	}
	mc, err := runProgram(collapsed)
	if err != nil {
		t.Fatal(err)
	}
	if mc.D[0] != 10 {
		t.Errorf("looped inline result = %d, want 10", mc.D[0])
	}
}

func TestRegisterInlineRejectsNonLeaves(t *testing.T) {
	bad := asmkit.New()
	bad.Jsr(1)
	bad.Rts()
	if _, err := synth.RegisterInline(bad.Export()); err == nil {
		t.Error("non-leaf accepted")
	}
	noRts := asmkit.New()
	noRts.Nop()
	if _, err := synth.RegisterInline(noRts.Export()); err == nil {
		t.Error("routine without rts accepted")
	}
	interior := asmkit.New()
	interior.Rts()
	interior.Nop()
	interior.Rts()
	if _, err := synth.RegisterInline(interior.Export()); err == nil {
		t.Error("interior rts accepted")
	}
}
