package stream_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"synthesis/internal/stream"
)

// sliceProducer yields its items then ErrEndOfStream.
type sliceProducer struct {
	mu    sync.Mutex
	items []int
}

func (s *sliceProducer) Produce() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return 0, stream.ErrEndOfStream
	}
	v := s.items[0]
	s.items = s.items[1:]
	return v, nil
}

// sliceConsumer collects items.
type sliceConsumer struct {
	mu  sync.Mutex
	got []int
}

func (s *sliceConsumer) Consume(v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, v)
	return nil
}

func (s *sliceConsumer) snapshot() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.got...)
}

func TestGauge(t *testing.T) {
	var g stream.Gauge
	g.Tick()
	g.Add(4)
	if g.Read() != 5 {
		t.Errorf("gauge = %d, want 5", g.Read())
	}
	if g.Swap() != 5 {
		t.Error("swap did not return count")
	}
	if g.Read() != 0 {
		t.Error("swap did not reset")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g stream.Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Tick()
			}
		}()
	}
	wg.Wait()
	if g.Read() != 8000 {
		t.Errorf("gauge = %d, want 8000", g.Read())
	}
}

func TestMeteredConsumer(t *testing.T) {
	var g stream.Gauge
	var sink sliceConsumer
	m := stream.Metered[int](&sink, &g)
	for i := 0; i < 7; i++ {
		if err := m.Consume(i); err != nil {
			t.Fatal(err)
		}
	}
	if g.Read() != 7 {
		t.Errorf("gauge = %d, want 7", g.Read())
	}
}

func TestSwitchRoutes(t *testing.T) {
	var even, odd sliceConsumer
	sw := &stream.Switch[int]{
		Select:  func(v int) int { return v & 1 },
		Outputs: []stream.Consumer[int]{&even, &odd},
	}
	for i := 0; i < 10; i++ {
		if err := sw.Consume(i); err != nil {
			t.Fatal(err)
		}
	}
	if len(even.got) != 5 || len(odd.got) != 5 {
		t.Fatalf("split %d/%d, want 5/5", len(even.got), len(odd.got))
	}
	for _, v := range even.got {
		if v&1 != 0 {
			t.Errorf("odd value %d routed to even output", v)
		}
	}
}

func TestSwitchBadOutputIsError(t *testing.T) {
	sw := &stream.Switch[int]{Select: func(int) int { return 5 }}
	if err := sw.Consume(1); err == nil {
		t.Error("out-of-range switch select did not error")
	}
}

func TestMonitorSerializes(t *testing.T) {
	// A deliberately racy consumer: the monitor must make it safe.
	var n int
	racy := stream.ConsumerFunc[int](func(int) error {
		n++
		return nil
	})
	m := stream.NewMonitor(racy)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Consume(1)
			}
		}()
	}
	wg.Wait()
	if n != 8000 {
		t.Errorf("n = %d, want 8000 (monitor failed to serialize)", n)
	}
}

func TestPumpMovesEverything(t *testing.T) {
	src := &sliceProducer{items: []int{1, 2, 3, 4, 5}}
	var dst sliceConsumer
	p := stream.NewPump[int](src, &dst)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	got := dst.snapshot()
	if len(got) != 5 {
		t.Fatalf("pumped %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Errorf("item %d = %d", i, v)
		}
	}
	if p.Gauge.Read() != 5 {
		t.Errorf("pump gauge = %d, want 5", p.Gauge.Read())
	}
}

func TestPumpStop(t *testing.T) {
	// An endless producer: Stop must halt the pump thread.
	var count atomic.Int64
	src := stream.ProducerFunc[int](func() (int, error) { return 1, nil })
	dst := stream.ConsumerFunc[int](func(int) error {
		count.Add(1)
		return nil
	})
	p := stream.NewPump[int](src, dst)
	for count.Load() < 100 {
	}
	p.Stop()
	after := count.Load()
	if after < 100 {
		t.Error("pump stopped before making progress")
	}
}

func TestPumpPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	src := stream.ProducerFunc[int](func() (int, error) { return 1, nil })
	dst := stream.ConsumerFunc[int](func(int) error { return boom })
	p := stream.NewPump[int](src, dst)
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestFilterTransformsAndDrops(t *testing.T) {
	var out sliceConsumer
	// Erase/kill-style filter: drop negatives, duplicate evens.
	f := &stream.Filter[int, int]{
		Fn: func(v int, emit func(int) error) error {
			if v < 0 {
				return nil
			}
			if err := emit(v); err != nil {
				return err
			}
			if v%2 == 0 {
				return emit(v)
			}
			return nil
		},
		Out: &out,
	}
	for _, v := range []int{1, -5, 2, 3, -1, 4} {
		if err := f.Consume(v); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{1, 2, 2, 3, 4, 4}
	got := out.snapshot()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// ---------------------------------------------------------------------
// Connect: the interfacer's case analysis.

func TestConnectChoosesMechanism(t *testing.T) {
	cases := []struct {
		opts stream.ConnectOptions
		want string
	}{
		{stream.ConnectOptions{ProdActive: true}, "call"},
		{stream.ConnectOptions{ProdActive: true, ProdMultiple: true}, "monitor"},
		{stream.ConnectOptions{ConsActive: true}, "call"},
		{stream.ConnectOptions{ConsActive: true, ConsMultiple: true}, "monitor"},
		{stream.ConnectOptions{ProdActive: true, ConsActive: true}, "queue:spsc"},
		{stream.ConnectOptions{ProdActive: true, ConsActive: true, ProdMultiple: true}, "queue:mpsc"},
		{stream.ConnectOptions{ProdActive: true, ConsActive: true, ConsMultiple: true}, "queue:spmc"},
		{stream.ConnectOptions{ProdActive: true, ConsActive: true, ProdMultiple: true, ConsMultiple: true}, "queue:mpmc"},
		{stream.ConnectOptions{}, "pump"},
	}
	for _, c := range cases {
		src := &sliceProducer{items: []int{1}}
		var dst sliceConsumer
		l := stream.Connect[int](c.opts, src, &dst)
		if l.Kind != c.want {
			t.Errorf("opts %+v: kind = %s, want %s", c.opts, l.Kind, c.want)
		}
		if l.Pump != nil {
			l.Pump.Wait()
		}
	}
}

func TestConnectActiveActiveDelivers(t *testing.T) {
	l := stream.Connect[int](stream.ConnectOptions{
		ProdActive: true, ConsActive: true,
		ProdMultiple: true, ConsMultiple: true,
		QueueSize: 16,
	}, nil, nil)
	const producers, per = 4, 500
	var wg sync.WaitGroup
	var sum atomic.Int64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < producers*per/4; i++ {
				v, _ := l.Recv.Produce()
				sum.Add(int64(v))
			}
		}()
	}
	want := int64(0)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := p*per + i
				l.Send.Consume(v)
			}
		}(p)
	}
	for v := 0; v < producers*per; v++ {
		want += int64(v)
	}
	wg.Wait()
	if sum.Load() != want {
		t.Errorf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestConnectPassivePassivePumps(t *testing.T) {
	src := &sliceProducer{items: []int{10, 20, 30}}
	var dst sliceConsumer
	l := stream.Connect[int](stream.ConnectOptions{}, src, &dst)
	if err := l.Pump.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := dst.snapshot(); len(got) != 3 || got[2] != 30 {
		t.Errorf("pumped %v", got)
	}
}

// Property: a pipeline of filters over Connect preserves item count
// for a counting filter regardless of input.
func TestPipelineCountProperty(t *testing.T) {
	check := func(items []int16) bool {
		src := &sliceProducer{}
		for _, v := range items {
			src.items = append(src.items, int(v))
		}
		var dst sliceConsumer
		var g stream.Gauge
		f := &stream.Filter[int, int]{
			Fn: func(v int, emit func(int) error) error {
				return emit(v * 2)
			},
			Out: stream.Metered[int](&dst, &g),
		}
		p := stream.NewPump[int](src, f)
		if err := p.Wait(); err != nil {
			return false
		}
		got := dst.snapshot()
		if len(got) != len(items) || g.Read() != int64(len(items)) {
			return false
		}
		for i, v := range items {
			if got[i] != int(v)*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
