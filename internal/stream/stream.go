// Package stream implements the Synthesis I/O model's building blocks
// (Sections 2.3 and 5 of the paper) as a composable Go library: data
// moves along streams connecting producers and consumers, and servers
// are assembled from a small set of parts — queues, monitors,
// switches, pumps and gauges — by an interfacer that picks the
// cheapest connection for each producer/consumer case (the principle
// of frugality):
//
//   - active producer, passive consumer (or vice versa), single
//     parties: a plain procedure call;
//   - the same with multiple parties: a monitor serializing access;
//   - active producer and active consumer: a queue between them;
//   - passive producer and passive consumer: a pump — a thread that
//     reads one side and writes the other.
package stream

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Producer is a passive source: Produce hands out the next item.
// io.Reader at item granularity.
type Producer[T any] interface {
	Produce() (T, error)
}

// Consumer is a passive sink: Consume accepts one item.
type Consumer[T any] interface {
	Consume(T) error
}

// ErrEndOfStream signals a producer is exhausted.
var ErrEndOfStream = errors.New("stream: end of stream")

// ErrClosed signals the stream has been shut down.
var ErrClosed = errors.New("stream: closed")

// ProducerFunc adapts a function to Producer.
type ProducerFunc[T any] func() (T, error)

// Produce implements Producer.
func (f ProducerFunc[T]) Produce() (T, error) { return f() }

// ConsumerFunc adapts a function to Consumer.
type ConsumerFunc[T any] func(T) error

// Consume implements Consumer.
func (f ConsumerFunc[T]) Consume(v T) error { return f(v) }

// ---------------------------------------------------------------- gauge

// Gauge counts events: procedure calls, data arrival, interrupts.
// "Schedulers use gauges to collect data for scheduling decisions"
// (Section 2.3); the fine-grain scheduler reads and resets gauges to
// estimate I/O rates. Safe for concurrent use.
type Gauge struct {
	n atomic.Int64
}

// Add records n events.
func (g *Gauge) Add(n int64) { g.n.Add(n) }

// Tick records one event.
func (g *Gauge) Tick() { g.n.Add(1) }

// Read returns the current count.
func (g *Gauge) Read() int64 { return g.n.Load() }

// Swap returns the count and resets it; the scheduler calls this once
// per quantum to turn counts into rates.
func (g *Gauge) Swap() int64 { return g.n.Swap(0) }

// Metered wraps a consumer so a gauge counts its traffic.
func Metered[T any](c Consumer[T], g *Gauge) Consumer[T] {
	return ConsumerFunc[T](func(v T) error {
		g.Tick()
		return c.Consume(v)
	})
}

// ---------------------------------------------------------------- switch

// Switch directs each item to one of several consumers, like the C
// switch statement ("switches direct interrupts to the appropriate
// service routines"). Select returns the output index for an item.
type Switch[T any] struct {
	Select  func(T) int
	Outputs []Consumer[T]
}

// Consume implements Consumer by routing the item.
func (s *Switch[T]) Consume(v T) error {
	i := s.Select(v)
	if i < 0 || i >= len(s.Outputs) {
		return errors.New("stream: switch selected nonexistent output")
	}
	return s.Outputs[i].Consume(v)
}

// ---------------------------------------------------------------- monitor

// Monitor serializes access to a passive party when multiple active
// parties call in (the multiple-single case of Section 5.2).
type Monitor[T any] struct {
	mu sync.Mutex
	c  Consumer[T]
}

// NewMonitor wraps a consumer in a monitor.
func NewMonitor[T any](c Consumer[T]) *Monitor[T] {
	return &Monitor[T]{c: c}
}

// Consume implements Consumer with mutual exclusion.
func (m *Monitor[T]) Consume(v T) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c.Consume(v)
}

// MonitorProducer serializes a passive producer shared by multiple
// active consumers.
type MonitorProducer[T any] struct {
	mu sync.Mutex
	p  Producer[T]
}

// NewMonitorProducer wraps a producer in a monitor.
func NewMonitorProducer[T any](p Producer[T]) *MonitorProducer[T] {
	return &MonitorProducer[T]{p: p}
}

// Produce implements Producer with mutual exclusion.
func (m *MonitorProducer[T]) Produce() (T, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.p.Produce()
}

// ---------------------------------------------------------------- pump

// Pump contains a thread that actively copies its input into its
// output, connecting a passive producer with a passive consumer (the
// xclock example of Section 5.2). A gauge counts pumped items so the
// scheduler can see the stream's rate.
type Pump[T any] struct {
	Gauge Gauge

	stop chan struct{}
	done chan struct{}
	once sync.Once
	err  atomic.Pointer[error]
}

// NewPump starts a pump moving items from p to c until Stop is called
// or the producer ends.
func NewPump[T any](p Producer[T], c Consumer[T]) *Pump[T] {
	pu := &Pump[T]{stop: make(chan struct{}), done: make(chan struct{})}
	go pu.run(p, c)
	return pu
}

func (pu *Pump[T]) run(p Producer[T], c Consumer[T]) {
	defer close(pu.done)
	for {
		select {
		case <-pu.stop:
			return
		default:
		}
		v, err := p.Produce()
		if err != nil {
			pu.setErr(err)
			return
		}
		if err := c.Consume(v); err != nil {
			pu.setErr(err)
			return
		}
		pu.Gauge.Tick()
	}
}

func (pu *Pump[T]) setErr(err error) {
	if !errors.Is(err, ErrEndOfStream) {
		pu.err.Store(&err)
	}
}

// Stop halts the pump and waits for its thread to exit.
func (pu *Pump[T]) Stop() {
	pu.once.Do(func() { close(pu.stop) })
	<-pu.done
}

// Wait blocks until the pump finishes on its own (producer end or
// error) and returns the terminal error, if any.
func (pu *Pump[T]) Wait() error {
	<-pu.done
	if e := pu.err.Load(); e != nil {
		return *e
	}
	return nil
}

// ---------------------------------------------------------------- filter

// Filter transforms a stream: each input item maps to zero or more
// output items (the cooked tty erase/kill filter of Section 5.1 is a
// Filter). A Filter is a passive consumer on its input side and calls
// a consumer on its output side, so the interfacer can collapse it
// into the adjacent stages.
type Filter[In, Out any] struct {
	Fn  func(In, func(Out) error) error
	Out Consumer[Out]
}

// Consume implements Consumer by transforming and forwarding.
func (f *Filter[In, Out]) Consume(v In) error {
	return f.Fn(v, f.Out.Consume)
}
