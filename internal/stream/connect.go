package stream

import "synthesis/internal/queue"

// Connect is the Go-plane analogue of the quaject interfacer's
// combination stage: given the producer/consumer relationship, it
// finds "the appropriate connecting mechanism (queue, monitor, pump,
// or a simple procedure call)" — Section 2.3 — and applies the
// principle of frugality by choosing the cheapest queue that is safe
// for the declared multiplicities (Section 5.2):
//
//	active producer + passive consumer, single:   procedure call
//	active producer + passive consumer, multiple: monitor
//	passive producer + active consumer, single:   procedure call
//	passive producer + active consumer, multiple: monitor
//	active producer + active consumer:            SP-SC / MP-SC /
//	                                              SP-MC / MP-MC queue
//	passive producer + passive consumer:          pump
type ConnectOptions struct {
	ProdActive   bool
	ProdMultiple bool
	ConsActive   bool
	ConsMultiple bool
	QueueSize    int // depth of the mediating queue (both-active case)
}

// Link is the connection the interfacer built. Active producers call
// Send; active consumers call Recv; in the passive-passive case the
// pump's thread moves the data and both endpoints stay passive.
type Link[T any] struct {
	// Kind names the chosen mechanism: "call", "monitor",
	// "queue:spsc", "queue:mpsc", "queue:spmc", "queue:mpmc", "pump".
	Kind string
	// Send accepts items from an active producer (nil when the
	// producer is passive).
	Send Consumer[T]
	// Recv hands items to an active consumer (nil when the consumer
	// is passive).
	Recv Producer[T]
	// Pump is non-nil only for the passive-passive case.
	Pump *Pump[T]
}

// Connect wires a producer to a consumer. The passive endpoint(s)
// must be supplied; active endpoints drive the returned Link.
func Connect[T any](opts ConnectOptions, passiveProd Producer[T], passiveCons Consumer[T]) Link[T] {
	if opts.QueueSize <= 0 {
		opts.QueueSize = 64
	}
	switch {
	case !opts.ProdActive && !opts.ConsActive:
		// Passive-passive: a pump thread reads one side and writes
		// the other (the xclock example).
		return Link[T]{Kind: "pump", Pump: NewPump(passiveProd, passiveCons)}

	case opts.ProdActive && !opts.ConsActive:
		// Active producer calls the consumer. Multiple producers
		// serialize through a monitor.
		if opts.ProdMultiple {
			return Link[T]{Kind: "monitor", Send: NewMonitor(passiveCons)}
		}
		return Link[T]{Kind: "call", Send: passiveCons}

	case !opts.ProdActive && opts.ConsActive:
		// Active consumer calls the producer.
		if opts.ConsMultiple {
			return Link[T]{Kind: "monitor", Recv: NewMonitorProducer(passiveProd)}
		}
		return Link[T]{Kind: "call", Recv: passiveProd}
	}

	// Both active: mediate with the cheapest safe optimistic queue.
	var (
		q    queue.NonBlocking[T]
		kind string
	)
	switch {
	case opts.ProdMultiple && opts.ConsMultiple:
		q, kind = queue.NewMPMC[T](opts.QueueSize), "queue:mpmc"
	case opts.ProdMultiple:
		q, kind = queue.NewMPSC[T](opts.QueueSize), "queue:mpsc"
	case opts.ConsMultiple:
		q, kind = queue.NewSPMC[T](opts.QueueSize), "queue:spmc"
	default:
		q, kind = queue.NewSPSC[T](opts.QueueSize), "queue:spsc"
	}
	b := queue.Blocking[T]{Q: q}
	return Link[T]{
		Kind: kind,
		Send: ConsumerFunc[T](func(v T) error { b.Put(v); return nil }),
		Recv: ProducerFunc[T](func() (T, error) { return b.Get(), nil }),
	}
}
