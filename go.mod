module synthesis

go 1.24
