package synthesis_test

// One benchmark per table and figure of the paper's evaluation
// (Section 6), plus the Go-plane queue benchmarks for Figures 1-2 and
// the locking ablation. The simulated measurements report their
// results as sim-usec/op metrics (the Quamachine's cycle clock at the
// SUN 3/160 emulation point); the queue benchmarks are ordinary
// wall-clock ns/op.

import (
	"runtime"
	"sync"
	"testing"

	"synthesis/internal/bench"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/queue"
	"synthesis/internal/synth"
)

// reportTable regenerates one registered table and reports every row
// as a metric. All table benchmarks dispatch through the bench
// registry, the same path synbench and quamon use.
func reportTable(b *testing.B, name string, cfg bench.RunConfig) {
	b.Helper()
	t, err := bench.Run(name, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		// The table was regenerated once; the b.N loop satisfies the
		// benchmark contract without re-simulating.
	}
	for _, r := range t.Rows {
		b.ReportMetric(r.Measured, "sim:"+sanitize(r.Name))
	}
	b.Log("\n" + t.String())
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		switch {
		case c == ' ' || c == '/' || c == ':':
			out = append(out, '_')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// Table 1: the seven UNIX programs, Synthesis vs the SUNOS-style
// baseline.
func BenchmarkTable1_UnixPrograms(b *testing.B) {
	iters := int32(100)
	if testing.Short() {
		iters = 20
	}
	reportTable(b, "1", bench.RunConfig{Iters: iters})
}

// Table 2: file and device I/O.
func BenchmarkTable2_FileDeviceIO(b *testing.B) { reportTable(b, "2", bench.RunConfig{}) }

// Table 3: thread operations.
func BenchmarkTable3_ThreadOps(b *testing.B) { reportTable(b, "3", bench.RunConfig{}) }

// Table 4: dispatcher and scheduler.
func BenchmarkTable4_Dispatcher(b *testing.B) { reportTable(b, "4", bench.RunConfig{}) }

// Table 5: interrupt handling.
func BenchmarkTable5_Interrupts(b *testing.B) { reportTable(b, "5", bench.RunConfig{}) }

// Table 6: network loopback sockets, synthesized vs generic layers.
func BenchmarkTable6_Network(b *testing.B) { reportTable(b, "6", bench.RunConfig{}) }

// Figure 2's path-length claim on the simulated machine.
func BenchmarkFigure2_PathLengths(b *testing.B) { reportTable(b, "pathlen", bench.RunConfig{}) }

// Section 6.4: kernel size accounting.
func BenchmarkSection64_KernelSize(b *testing.B) { reportTable(b, "size", bench.RunConfig{}) }

// Ablations of the design choices DESIGN.md calls out.
func BenchmarkAblations(b *testing.B) { reportTable(b, "ablations", bench.RunConfig{}) }

// ---------------------------------------------------------------------
// Figure 1: the SP-SC optimistic queue, Go plane (wall clock).

func BenchmarkFigure1_SPSC(b *testing.B) {
	q := queue.NewSPSC[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			for {
				if _, ok := q.TryGet(); ok {
					break
				}
				runtime.Gosched()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !q.TryPut(i) {
			runtime.Gosched()
		}
	}
	<-done
}

// Figure 2: the MP-SC queue with CAS claims, contended producers.
func BenchmarkFigure2_MPSC(b *testing.B) {
	q := queue.NewMPSC[int](1024)
	var consumed sync.WaitGroup
	consumed.Add(1)
	stop := make(chan struct{})
	go func() {
		defer consumed.Done()
		for {
			if _, ok := q.TryGet(); !ok {
				select {
				case <-stop:
					// Drain what is left.
					for {
						if _, ok := q.TryGet(); !ok {
							return
						}
					}
				default:
					runtime.Gosched()
				}
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			for !q.TryPut(i) {
				runtime.Gosched()
			}
			i++
		}
	})
	close(stop)
	consumed.Wait()
}

// Figure 2's multi-item atomic insert.
func BenchmarkFigure2_MPSC_Batch8(b *testing.B) {
	q := queue.NewMPSC[int](4096)
	go func() {
		for {
			if _, ok := q.TryGet(); !ok {
				runtime.Gosched()
			}
		}
	}()
	batch := make([]int, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !q.PutBatch(batch) {
			runtime.Gosched()
		}
	}
}

// Ablation: optimistic MP-MC queue vs the traditional mutex/condition
// queue under the same contention.
func BenchmarkAblation_QueueOptimisticMPMC(b *testing.B) {
	q := queue.NewMPMC[int](1024)
	benchContended(b, q.TryPut, q.TryGet)
}

func BenchmarkAblation_QueueLocked(b *testing.B) {
	q := queue.NewLocked[int](1024)
	benchContended(b, q.TryPut, q.TryGet)
}

func benchContended(b *testing.B, put func(int) bool, get func() (int, bool)) {
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%2 == 0 {
				for !put(i) {
					get() // make room under contention
				}
			} else {
				get()
			}
			i++
		}
	})
}

// Figure 3: the executable ready queue — repeated quantum-driven
// context switches on the simulated machine (sim-usec per switch).
func BenchmarkFigure3_ExecutableReadyQueue(b *testing.B) {
	cfg := m68k.Sun3Config()
	k := kernel.Boot(kernel.Config{Machine: cfg})
	spin := func(name string) *kernel.Thread {
		prog := k.C.Synthesize(nil, name, nil, func(e *synth.Emitter) {
			e.Label("loop")
			e.AddL(m68k.Imm(1), m68k.Abs(0x9000))
			e.Bra("loop")
		})
		return k.SpawnKernel(name, prog)
	}
	t1 := spin("a")
	spin("b")
	k.Start(t1)
	if err := k.M.Run(2_000_000); err != nil && err != m68k.ErrCycleLimit {
		b.Fatal(err)
	}
	var total float64
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		us := kernel.MeasureSwitchMicros(k)
		if us < 0 {
			b.Fatal("switch measurement failed")
		}
		total += us
		n++
	}
	b.ReportMetric(total/float64(n), "sim-usec/switch")
}
