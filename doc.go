// Package synthesis is a reproduction of "Threads and Input/Output in
// the Synthesis Kernel" (Henry Massalin and Calton Pu, SOSP 1989) as a
// Go library.
//
// The Synthesis kernel's two headline techniques — run-time kernel
// code synthesis and reduced (optimistic) synchronization — are built
// here twice over:
//
//   - On the simulation plane, internal/m68k implements the
//     Quamachine, a cycle-accounted 68020-class virtual machine, and
//     internal/kernel + internal/kio implement the Synthesis kernel on
//     it: per-thread synthesized context switches chained through the
//     executable ready queue, system calls synthesized by open,
//     procedure chaining, lazy floating-point contexts, and the
//     stream I/O servers. internal/sunos is the traditional baseline
//     kernel the paper compares against, and internal/bench
//     regenerates Tables 1-5 of the evaluation.
//
//   - On the library plane, internal/queue provides the paper's
//     optimistic lock-free queues (Figures 1 and 2: SP-SC, MP-SC with
//     atomic multi-item insert, SP-MC, MP-MC) as production Go code,
//     and internal/stream provides the quaject building blocks
//     (pumps, switches, gauges, monitors, filters) with the
//     interfacer's producer/consumer case analysis.
//
// See DESIGN.md for the system inventory and the per-experiment index,
// EXPERIMENTS.md for paper-versus-measured results, and the examples/
// directory for runnable programs. The benchmarks in bench_test.go
// regenerate every table with `go test -bench=.`.
package synthesis
